//! The clock (second-chance) buffer pool over a [`StorageBackend`].
//!
//! Every query executed against a paged database gets its own
//! [`BufferPool`], cold-started at a configurable byte budget
//! ([`PoolConfig`]) — per-query pools keep the `page_reads`/`pool_hits`/
//! `pool_evictions` counters deterministic and independent of how many
//! worker threads the suite runs queries on (a shared pool would make one
//! query's hits depend on which queries ran before it on that worker; see
//! the serial-vs-parallel determinism tests in `tests/trace.rs`).
//!
//! Frames follow a pin/unpin discipline: a pinned frame is never evicted
//! (the clock hand skips it), and the pool only exceeds its budget
//! transiently when every frame is pinned at once. Accounting lands
//! directly in [`Metrics`]: a request is either a `pool_hit` or a
//! `page_read` (backend fault), and each clock victim is a
//! `pool_eviction`.

use crate::metrics::Metrics;
use crate::page::{PageId, StorageBackend, PAGE_SIZE};
use std::collections::HashMap;
use std::io;

/// Buffer-pool sizing: the byte budget the `--pool-bytes` knob sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// Pool budget in bytes; the pool holds at most
    /// `max(1, pool_bytes / PAGE_SIZE)` frames (plus transient overshoot
    /// while every frame is pinned).
    pub pool_bytes: u64,
}

/// Default pool budget: 16 MiB (2048 frames), a deliberately small echo of
/// TIMBER's 256 MB pool scaled to this reproduction's data sizes.
pub const DEFAULT_POOL_BYTES: u64 = 16 * 1024 * 1024;

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig { pool_bytes: DEFAULT_POOL_BYTES }
    }
}

impl PoolConfig {
    /// Frame capacity under the byte budget (at least one frame).
    pub fn frames(&self) -> usize {
        ((self.pool_bytes / PAGE_SIZE as u64) as usize).max(1)
    }
}

#[derive(Debug)]
struct Frame {
    page: PageId,
    data: Vec<u8>,
    /// Second-chance bit: set on every access, cleared as the clock hand
    /// passes; a frame is only evicted with the bit clear.
    referenced: bool,
    pins: u32,
}

/// A clock-eviction page cache with pin/unpin discipline.
#[derive(Debug)]
pub struct BufferPool {
    frames: Vec<Frame>,
    map: HashMap<PageId, usize>,
    hand: usize,
    capacity: usize,
}

impl BufferPool {
    /// An empty pool with the given budget. Frames are allocated on
    /// demand, so an untouched pool costs nothing.
    pub fn new(cfg: PoolConfig) -> Self {
        BufferPool { frames: Vec::new(), map: HashMap::new(), hand: 0, capacity: cfg.frames() }
    }

    /// Frame capacity (the byte budget in pages).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of resident frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether no frames are resident.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Pin `page` into a frame, faulting it in from `backend` on a miss,
    /// and return the frame index. Charges exactly one of
    /// `pool_hits`/`page_reads`, plus one `pool_evictions` per frame the
    /// clock sweep had to victimize. The frame stays ineligible for
    /// eviction until [`unpin`](BufferPool::unpin).
    pub fn pin(
        &mut self,
        page: PageId,
        backend: &dyn StorageBackend,
        m: &mut Metrics,
    ) -> io::Result<usize> {
        if let Some(&idx) = self.map.get(&page) {
            m.pool_hits += 1;
            let f = &mut self.frames[idx];
            f.referenced = true;
            f.pins += 1;
            return Ok(idx);
        }
        m.page_reads += 1;
        let idx = self.victim_frame(m);
        let f = &mut self.frames[idx];
        f.data.resize(PAGE_SIZE, 0);
        backend.read_page(page, &mut f.data)?;
        f.page = page;
        f.referenced = true;
        f.pins = 1;
        self.map.insert(page, idx);
        Ok(idx)
    }

    /// Release one pin on a frame returned by [`pin`](BufferPool::pin).
    pub fn unpin(&mut self, frame: usize) {
        let f = &mut self.frames[frame];
        assert!(f.pins > 0, "unpin without a matching pin");
        f.pins -= 1;
    }

    /// The resident bytes of a pinned (or at least resident) frame.
    pub fn frame_data(&self, frame: usize) -> &[u8] {
        &self.frames[frame].data
    }

    /// Touch `page` for accounting: pin, then immediately unpin. This is
    /// the executor's per-record access path — the pin only needs to
    /// outlive the record read, which the in-memory working representation
    /// has already materialized (DESIGN.md §14).
    pub fn access(
        &mut self,
        page: PageId,
        backend: &dyn StorageBackend,
        m: &mut Metrics,
    ) -> io::Result<()> {
        let idx = self.pin(page, backend, m)?;
        self.unpin(idx);
        Ok(())
    }

    /// Whether `page` is resident.
    pub fn contains(&self, page: PageId) -> bool {
        self.map.contains_key(&page)
    }

    /// Find a frame to (re)use: grow while under budget, otherwise run the
    /// clock sweep; if every frame is pinned, grow past budget (transient
    /// overshoot — the alternative is deadlock).
    fn victim_frame(&mut self, m: &mut Metrics) -> usize {
        if self.frames.len() < self.capacity {
            self.frames.push(Frame { page: 0, data: Vec::new(), referenced: false, pins: 0 });
            return self.frames.len() - 1;
        }
        // Two full sweeps suffice when any frame is evictable: the first
        // clears reference bits, the second takes the first unpinned frame.
        for _ in 0..2 * self.frames.len() {
            let idx = self.hand;
            self.hand = (self.hand + 1) % self.frames.len();
            let f = &mut self.frames[idx];
            if f.pins > 0 {
                continue;
            }
            if f.referenced {
                f.referenced = false;
                continue;
            }
            self.map.remove(&f.page);
            m.pool_evictions += 1;
            return idx;
        }
        self.frames.push(Frame { page: 0, data: Vec::new(), referenced: false, pins: 0 });
        self.frames.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::{MemPages, PAGE_SIZE};

    /// A backend with `n` data pages, page `p` filled with byte `p as u8`.
    fn backend_with(n: u64) -> MemPages {
        let b = MemPages::new();
        let first = b.reserve(n).unwrap();
        assert_eq!(first, 1);
        let mut data = vec![0u8; (n as usize) * PAGE_SIZE];
        for p in 0..n as usize {
            data[p * PAGE_SIZE..(p + 1) * PAGE_SIZE].fill((p + 1) as u8);
        }
        b.write_pages(first, &data).unwrap();
        b
    }

    #[test]
    fn hits_misses_and_evictions_are_counted() {
        let backend = backend_with(4);
        let cfg = PoolConfig { pool_bytes: 2 * PAGE_SIZE as u64 };
        let mut pool = BufferPool::new(cfg);
        assert_eq!(pool.capacity(), 2);
        let mut m = Metrics::default();
        pool.access(1, &backend, &mut m).unwrap();
        pool.access(2, &backend, &mut m).unwrap();
        pool.access(1, &backend, &mut m).unwrap();
        assert_eq!((m.page_reads, m.pool_hits, m.pool_evictions), (2, 1, 0));
        // a third page under a two-frame budget evicts
        pool.access(3, &backend, &mut m).unwrap();
        assert_eq!(m.page_reads, 3);
        assert_eq!(m.pool_evictions, 1);
        assert_eq!(pool.len(), 2, "pool never exceeds budget while unpinned");
    }

    #[test]
    fn pinned_pages_survive_pressure() {
        let backend = backend_with(4);
        let mut pool = BufferPool::new(PoolConfig { pool_bytes: 2 * PAGE_SIZE as u64 });
        let mut m = Metrics::default();
        let pinned = pool.pin(1, &backend, &mut m).unwrap();
        // stream the other three pages through the remaining frame
        for p in [2, 3, 4, 2, 3, 4] {
            pool.access(p, &backend, &mut m).unwrap();
        }
        assert!(pool.contains(1), "pinned page must never be evicted");
        assert_eq!(pool.frame_data(pinned)[0], 1, "pinned frame still holds its page");
        pool.unpin(pinned);
        // once unpinned it becomes evictable again
        for p in [2, 3, 4, 2, 3, 4] {
            pool.access(p, &backend, &mut m).unwrap();
        }
        assert!(!pool.contains(1));
    }

    #[test]
    fn eviction_then_reread_restores_bytes() {
        let backend = backend_with(3);
        let mut pool = BufferPool::new(PoolConfig { pool_bytes: PAGE_SIZE as u64 });
        let mut m = Metrics::default();
        let f = pool.pin(1, &backend, &mut m).unwrap();
        assert!(pool.frame_data(f).iter().all(|&b| b == 1));
        pool.unpin(f);
        // evict page 1 by touching 2 and 3 through the single frame…
        pool.access(2, &backend, &mut m).unwrap();
        pool.access(3, &backend, &mut m).unwrap();
        assert!(!pool.contains(1));
        // …then fault it back in and check the bytes are intact
        let f = pool.pin(1, &backend, &mut m).unwrap();
        assert!(pool.frame_data(f).iter().all(|&b| b == 1));
        pool.unpin(f);
        assert_eq!(m.page_reads, 4);
        assert_eq!(m.pool_evictions, 3);
    }

    #[test]
    fn all_pinned_overshoots_transiently() {
        let backend = backend_with(3);
        let mut pool = BufferPool::new(PoolConfig { pool_bytes: PAGE_SIZE as u64 });
        let mut m = Metrics::default();
        let a = pool.pin(1, &backend, &mut m).unwrap();
        let b = pool.pin(2, &backend, &mut m).unwrap();
        assert_eq!(pool.len(), 2, "fully pinned pool grows past budget instead of deadlocking");
        assert_eq!(m.pool_evictions, 0);
        pool.unpin(a);
        pool.unpin(b);
    }

    #[test]
    fn tiny_budget_still_has_one_frame() {
        assert_eq!(PoolConfig { pool_bytes: 0 }.frames(), 1);
        assert_eq!(PoolConfig::default().frames(), 2048);
    }
}

//! Attribute values, join keys, and the text symbol table.
//!
//! Join keys are `Copy`: text values are interned into a `u32` symbol table
//! ([`Interner`]) when a database is built, so the hash-join probe path
//! never allocates — see `join::value_join`.

use std::cmp::Ordering;
use std::collections::HashMap;
use std::fmt;

/// An atomic attribute value. Dates are stored as ISO-8601 text (their
/// lexicographic order is chronological).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit integer (keys, counts, idrefs).
    Int(i64),
    /// Floating point (prices, rates).
    Float(f64),
    /// Text (names, dates, enumerations).
    Text(String),
}

impl Value {
    /// Total order across values: by variant first (Int < Float < Text),
    /// then within the variant; NaN sorts last among floats.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Text(a), Text(b)) => a.cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Int(_) | Float(_), Text(_)) => Ordering::Less,
            (Text(_), Int(_) | Float(_)) => Ordering::Greater,
        }
    }

    /// Equality used by joins and predicates (numeric cross-variant
    /// comparison allowed, like XPath general comparison).
    pub fn matches(&self, other: &Value) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }

    /// The integer value, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The text value, if this is a `Text`.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Approximate serialized size in bytes (for the Table 1 storage model).
    pub fn byte_size(&self) -> usize {
        match self {
            Value::Int(_) => 8,
            Value::Float(_) => 8,
            Value::Text(s) => s.len(),
        }
    }
}

/// Hashable, `Copy` join key for [`Value`], produced by [`Interner::key`].
///
/// Keys agree with [`Value::matches`]: integral floats unify with ints, and
/// equal strings map to the same symbol. Because text is represented by its
/// symbol, producing a key never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ValueKey {
    /// Integer or integral float.
    Num(i64),
    /// Non-integral float bits.
    Bits(u64),
    /// Interned text symbol.
    Sym(u32),
}

/// Text symbol table. Every text attribute value stored in a database is
/// interned here (at build time and on every write), so join keys for text
/// are plain `u32` symbols.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Interner {
    map: HashMap<String, u32>,
    strings: Vec<String>,
}

impl Interner {
    /// Rebuild a table from its symbol-ordered string list, as the paged
    /// storage loader decodes it. Symbols keep their stored values.
    pub(crate) fn from_strings(strings: Vec<String>) -> Interner {
        let map = strings.iter().enumerate().map(|(i, s)| (s.clone(), i as u32)).collect();
        Interner { map, strings }
    }

    /// Intern `s`, returning its symbol (stable for the table's lifetime).
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = self.strings.len() as u32;
        self.map.insert(s.to_owned(), sym);
        self.strings.push(s.to_owned());
        sym
    }

    /// Symbol of an already-interned string.
    pub fn get(&self, s: &str) -> Option<u32> {
        self.map.get(s).copied()
    }

    /// The string behind a symbol.
    pub fn resolve(&self, sym: u32) -> &str {
        &self.strings[sym as usize]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// The `Copy` join key of a value (distinguishes variants except for
    /// integral floats, which compare equal to ints, mirroring
    /// [`Value::matches`]).
    ///
    /// # Panics
    /// If `v` is a text value that was never interned — stored values are
    /// always interned by the database build/write paths.
    pub fn key(&self, v: &Value) -> ValueKey {
        self.try_key(v).expect("text value interned at database build/write time")
    }

    /// Non-panicking [`Interner::key`]: `None` for a text value that was
    /// never interned (a value that cannot be stored in the database, so
    /// it can match nothing).
    pub fn try_key(&self, v: &Value) -> Option<ValueKey> {
        match v {
            Value::Int(i) => Some(ValueKey::Num(*i)),
            Value::Float(f) if f.fract() == 0.0 && f.is_finite() => Some(ValueKey::Num(*f as i64)),
            Value::Float(f) => Some(ValueKey::Bits(f.to_bits())),
            Value::Text(s) => self.get(s).map(ValueKey::Sym),
        }
    }

    /// Order a stored join key against a comparison constant, agreeing with
    /// `stored.total_cmp(constant)` on every value the key path can store:
    /// numeric variants promote to `f64` against floats, text resolves
    /// through the symbol table, and text sorts greatest (the
    /// [`Value::total_cmp`] variant order). This is what lets the sorted
    /// value index answer `<`/`>` predicates per distinct-key group without
    /// materializing the stored [`Value`]s.
    ///
    /// The one divergence from `total_cmp` is inherited from [`ValueKey`]
    /// itself: a stored `-0.0` keys as `Num(0)` and therefore compares
    /// *equal* to integer zero here, where `f64::total_cmp` would order it
    /// below `+0.0` (join keys already unify the two, so the index stays
    /// consistent with the hash-join path).
    pub fn key_value_cmp(&self, k: ValueKey, v: &Value) -> Ordering {
        match (k, v) {
            (ValueKey::Num(a), Value::Int(b)) => a.cmp(b),
            (ValueKey::Num(a), Value::Float(b)) => (a as f64).total_cmp(b),
            (ValueKey::Bits(a), Value::Int(b)) => f64::from_bits(a).total_cmp(&(*b as f64)),
            (ValueKey::Bits(a), Value::Float(b)) => f64::from_bits(a).total_cmp(b),
            (ValueKey::Num(_) | ValueKey::Bits(_), Value::Text(_)) => Ordering::Less,
            (ValueKey::Sym(s), Value::Text(t)) => self.resolve(s).cmp(t.as_str()),
            (ValueKey::Sym(_), Value::Int(_) | Value::Float(_)) => Ordering::Greater,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_matching() {
        assert!(Value::Int(1).matches(&Value::Int(1)));
        assert!(Value::Int(1).matches(&Value::Float(1.0)));
        assert!(!Value::Int(1).matches(&Value::Text("1".into())));
        assert_eq!(Value::Int(2).total_cmp(&Value::Int(10)), Ordering::Less);
        assert_eq!(
            Value::Text("2020-01-02".into()).total_cmp(&Value::Text("2020-01-10".into())),
            Ordering::Less
        );
    }

    #[test]
    fn join_keys_unify_int_and_integral_float() {
        let mut it = Interner::default();
        it.intern("7");
        assert_eq!(it.key(&Value::Int(7)), it.key(&Value::Float(7.0)));
        assert_ne!(it.key(&Value::Int(7)), it.key(&Value::Float(7.5)));
        assert_ne!(it.key(&Value::Int(7)), it.key(&Value::Text("7".into())));
    }

    #[test]
    fn interner_is_stable_and_deduplicating() {
        let mut it = Interner::default();
        let a = it.intern("alpha");
        let b = it.intern("beta");
        assert_ne!(a, b);
        assert_eq!(it.intern("alpha"), a, "re-interning returns the same symbol");
        assert_eq!(it.resolve(b), "beta");
        assert_eq!(it.len(), 2);
        assert_eq!(
            it.key(&Value::Text("alpha".into())),
            it.key(&Value::Text("alpha".into())),
            "equal strings share a key"
        );
        assert_ne!(it.key(&Value::Text("alpha".into())), it.key(&Value::Text("beta".into())));
    }

    #[test]
    fn byte_sizes() {
        assert_eq!(Value::Int(1).byte_size(), 8);
        assert_eq!(Value::Text("abcd".into()).byte_size(), 4);
    }

    /// `key_value_cmp(key(stored), constant)` must reproduce
    /// `stored.total_cmp(constant)` — the contract the index range path
    /// relies on — across every variant pairing.
    #[test]
    fn key_value_cmp_agrees_with_total_cmp() {
        let mut it = Interner::default();
        for s in ["alpha", "beta", "2020-01-05"] {
            it.intern(s);
        }
        let stored = [
            Value::Int(-3),
            Value::Int(0),
            Value::Int(7),
            Value::Float(2.5),
            Value::Float(7.0),
            Value::Float(-1.25),
            Value::Text("alpha".into()),
            Value::Text("beta".into()),
            Value::Text("2020-01-05".into()),
        ];
        let constants = [
            Value::Int(-3),
            Value::Int(2),
            Value::Int(7),
            Value::Float(2.5),
            Value::Float(6.9),
            Value::Text("alpha".into()),
            Value::Text("aztec".into()),
            Value::Text("2020-01-09".into()),
        ];
        for s in &stored {
            let k = it.key(s);
            for c in &constants {
                assert_eq!(it.key_value_cmp(k, c), s.total_cmp(c), "{s} vs {c}");
            }
        }
    }
}

//! Attribute values.

use std::cmp::Ordering;
use std::fmt;

/// An atomic attribute value. Dates are stored as ISO-8601 text (their
/// lexicographic order is chronological).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit integer (keys, counts, idrefs).
    Int(i64),
    /// Floating point (prices, rates).
    Float(f64),
    /// Text (names, dates, enumerations).
    Text(String),
}

impl Value {
    /// Total order across values: by variant first (Int < Float < Text),
    /// then within the variant; NaN sorts last among floats.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Text(a), Text(b)) => a.cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Int(_) | Float(_), Text(_)) => Ordering::Less,
            (Text(_), Int(_) | Float(_)) => Ordering::Greater,
        }
    }

    /// Equality used by joins and predicates (numeric cross-variant
    /// comparison allowed, like XPath general comparison).
    pub fn matches(&self, other: &Value) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }

    /// The integer value, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The text value, if this is a `Text`.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Approximate serialized size in bytes (for the Table 1 storage model).
    pub fn byte_size(&self) -> usize {
        match self {
            Value::Int(_) => 8,
            Value::Float(_) => 8,
            Value::Text(s) => s.len(),
        }
    }

    /// A stable hash key for hash joins (distinguishes variants except for
    /// integral floats, which compare equal to ints).
    pub fn join_key(&self) -> ValueKey {
        match self {
            Value::Int(i) => ValueKey::Num(*i),
            Value::Float(f) if f.fract() == 0.0 && f.is_finite() => ValueKey::Num(*f as i64),
            Value::Float(f) => ValueKey::Bits(f.to_bits()),
            Value::Text(s) => ValueKey::Text(s.clone()),
        }
    }
}

/// Hashable join key for [`Value`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ValueKey {
    /// Integer or integral float.
    Num(i64),
    /// Non-integral float bits.
    Bits(u64),
    /// Text.
    Text(String),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_matching() {
        assert!(Value::Int(1).matches(&Value::Int(1)));
        assert!(Value::Int(1).matches(&Value::Float(1.0)));
        assert!(!Value::Int(1).matches(&Value::Text("1".into())));
        assert_eq!(Value::Int(2).total_cmp(&Value::Int(10)), Ordering::Less);
        assert_eq!(
            Value::Text("2020-01-02".into()).total_cmp(&Value::Text("2020-01-10".into())),
            Ordering::Less
        );
    }

    #[test]
    fn join_keys_unify_int_and_integral_float() {
        assert_eq!(Value::Int(7).join_key(), Value::Float(7.0).join_key());
        assert_ne!(Value::Int(7).join_key(), Value::Float(7.5).join_key());
        assert_ne!(Value::Int(7).join_key(), Value::Text("7".into()).join_key());
    }

    #[test]
    fn byte_sizes() {
        assert_eq!(Value::Int(1).byte_size(), 8);
        assert_eq!(Value::Text("abcd".into()).byte_size(), 4);
    }
}

//! Storage statistics — the top half of Table 1.
//!
//! Not to be confused with [`crate::statistics`]: **this** module is the
//! paper-facing *storage accounting* (element/attribute/content-node/byte
//! counts reported per schema in Table 1), while `statistics` is the
//! *optimizer's catalog* (histograms, distinct counts, extent
//! cardinalities) feeding cardinality estimation and kernel dispatch.
//!
//! Node decomposition (documented substitution for TIMBER's internal node
//! accounting):
//!
//! * **elements** — stored elements (canonical + copies). All node
//!   normalized schemas of one diagram report the same number; DEEP/UNDR
//!   report more, as in the paper.
//! * **attributes** — XML attribute nodes: the implicit `id` on every
//!   element, every non-text declared attribute, and every idref attribute.
//! * **content nodes** — text nodes: one per text-domain attribute value
//!   (modelled as a text child, where TIMBER stores long values out of
//!   line).
//! * **data bytes** — a byte model: 24 bytes per element header, 8 per
//!   implicit id, `8 + value size` per attribute/content value, 20 per
//!   per-color occurrence (the `(start, end, level, parent, element)`
//!   label record). More colors ⇒ more occurrence records ⇒ larger
//!   database, which is why DR costs more storage than EN/MCMR and why
//!   "violating node normalization costs a great deal more in storage than
//!   violating edge normalization".

use crate::database::Database;
use crate::value::Value;
use colorist_er::{Domain, ErGraph};
use colorist_mct::ColorId;

/// The Table 1 storage row for one database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Stats {
    /// Stored elements.
    pub elements: u64,
    /// XML attribute nodes.
    pub attributes: u64,
    /// Text content nodes.
    pub content_nodes: u64,
    /// Modelled size in bytes.
    pub data_bytes: u64,
    /// Number of colors.
    pub colors: usize,
}

impl Stats {
    /// Size in MBytes (as printed in Table 1).
    pub fn data_mbytes(&self) -> f64 {
        self.data_bytes as f64 / (1024.0 * 1024.0)
    }
}

/// Compute the storage statistics of a database.
pub fn stats(db: &Database, graph: &ErGraph) -> Stats {
    let mut s = Stats { colors: db.color_count(), ..Default::default() };
    // per-node declared-attribute shape: (non-text count, text count)
    let shapes: Vec<(u64, u64)> = graph
        .nodes()
        .iter()
        .map(|n| {
            let text = n
                .attributes
                .iter()
                .filter(|a| matches!(a.domain, Domain::Text | Domain::Date))
                .count() as u64;
            (n.attributes.len() as u64 - text, text)
        })
        .collect();
    // idref attributes per node
    let mut idrefs_per_node = vec![0u64; graph.node_count()];
    for l in db.schema.idrefs() {
        idrefs_per_node[graph.edge(l.edge).rel.idx()] += 1;
    }

    for e in db.elements() {
        s.elements += 1;
        let (non_text, text) = shapes[e.node.idx()];
        let idrefs = idrefs_per_node[e.node.idx()];
        s.attributes += 1 /* implicit id */ + non_text + idrefs;
        s.content_nodes += text;
        s.data_bytes += 24 + 8; // header + id
        s.data_bytes += e.attrs.iter().map(|v| 8 + v.byte_size() as u64).sum::<u64>();
    }
    for c in 0..db.color_count() {
        s.data_bytes += 20 * db.color(ColorId(c as u16)).occs().len() as u64;
    }
    // sanity: text attr values actually stored as Text
    debug_assert!(db
        .elements()
        .iter()
        .flat_map(|e| &e.attrs)
        .all(|v| matches!(v, Value::Int(_) | Value::Float(_) | Value::Text(_))));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::DatabaseBuilder;
    use colorist_er::{Attribute, ErDiagram};

    #[test]
    fn counts_follow_the_model() {
        let mut d = ErDiagram::new("t");
        d.add_entity("a", vec![Attribute::key("id"), Attribute::text("name")]).unwrap();
        d.add_entity("b", vec![Attribute::key("id")]).unwrap();
        d.add_rel_1m("r", "a", "b").unwrap();
        let g = ErGraph::from_diagram(&d).unwrap();
        let schema = colorist_core::design(&g, colorist_core::Strategy::Shallow).unwrap();
        let a = g.node_by_name("a").unwrap();
        let mut bd = DatabaseBuilder::new(schema.clone(), g.node_count());
        let pa = schema.placements_of(a)[0];
        let ea = bd.add_canonical(a, vec![Value::Int(0), Value::Text("xyz".into())]);
        bd.add_occurrence(ColorId(0), ea, pa, None);
        // an unreachable b element (no occurrence) still counts as storage
        let b = g.node_by_name("b").unwrap();
        bd.add_canonical(b, vec![Value::Int(0)]);
        let db = bd.finish();
        let st = stats(&db, &g);
        assert_eq!(st.elements, 2);
        // a: id attr + key `id` ; b: id + key `id`; r extent empty (idrefs
        // live on r elements, none stored)
        assert_eq!(st.attributes, 4);
        assert_eq!(st.content_nodes, 1); // a.name
        assert_eq!(st.colors, 1);
        // bytes: a: 24+8 + (8+8) + (8+3); b: 24+8 + (8+8); occs: 1*20
        assert_eq!(st.data_bytes, (24 + 8 + 16 + 11) + (24 + 8 + 16) + 20);
        assert!(st.data_mbytes() < 1.0);
    }
}

//! The stored MCT database: elements plus per-color labelled occurrence
//! trees.
//!
//! **Elements** are the stored XML elements. Every logical ER instance has
//! exactly one *canonical* element; un-normalized schemas (DEEP, UNDR)
//! additionally store *copies* — physically duplicated elements with their
//! own attribute storage, which is why Table 1 shows DEEP at 6.08M elements
//! against 2.64M for every node-normalized schema.
//!
//! **Occurrences** are positions in a color's tree. A canonical element has
//! at most one occurrence per color (the MCT invariant: a node belongs to
//! exactly one rooted tree per color it carries); each copy element has
//! exactly one occurrence. Occurrences carry `(start, end, level)` interval
//! labels assigned by a DFS per color, so that `a` is an ancestor of `d` iff
//! `a.start < d.start && d.end <= a.end` — the primitive behind structural
//! joins.

use crate::effect::shadow;
use crate::index::{IndexEntry, ValueIndex};
use crate::statistics::{Cardinality, CmpKind, Statistics};
use crate::storage::{SegId, Storage};
use crate::value::{Interner, Value, ValueKey};
use colorist_er::{ErGraph, NodeId};
use colorist_mct::{ColorId, MctSchema, PlacementId};
use std::collections::HashMap;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Tombstone marker in the ordinal index: this ordinal's instance was
/// deleted. Ordinals are never reused, so a stale link or idref value can
/// only resolve to `None`, never to a different element.
pub(crate) const TOMBSTONE: ElementId = ElementId(u32::MAX);

/// How the executor and the join dispatchers pick kernels, and — because
/// the planner must never vary independently of the kernels in a
/// differential run — which planner the query layer uses.
///
/// * [`CostModel`](KernelDispatch::CostModel) (the default): index/gallop
///   fast paths chosen by the statistics cost model
///   ([`crate::statistics::gallop_cost_wins`]), cost-based planning.
/// * [`Ratio`](KernelDispatch::Ratio): fast paths chosen by the fixed
///   [`crate::join::GALLOP_RATIO`] side-size ratio — the statistics-free
///   fallback — heuristic planning. The "one variable at a time" partner
///   for optimizer differentials.
/// * [`Reference`](KernelDispatch::Reference): linear extent walks,
///   stack-merge joins, per-op hash builds, heuristic planning. The partner
///   for kernel differentials.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelDispatch {
    /// Statistics cost-model dispatch + cost-based planning.
    #[default]
    CostModel,
    /// Fixed-ratio dispatch + heuristic planning.
    Ratio,
    /// Reference kernels + heuristic planning.
    Reference,
}

/// Identifier of a stored element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ElementId(pub u32);

/// Identifier of an occurrence within one color's tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OccId(pub u32);

impl ElementId {
    /// Index as `usize`.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl OccId {
    /// Index as `usize`.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ElementId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "el{}", self.0)
    }
}

/// A stored element.
#[derive(Debug, Clone, PartialEq)]
pub struct Element {
    /// The ER node type.
    pub node: NodeId,
    /// Ordinal of the logical instance within its type's extent.
    pub ordinal: u32,
    /// The canonical element of this logical instance (self for canonical
    /// elements; a copy points at the original whose data it duplicates).
    pub canonical: ElementId,
    /// Attribute values, aligned with the ER node's attribute declaration.
    pub attrs: Vec<Value>,
}

impl Element {
    /// Whether this element is a physical duplicate.
    pub fn is_copy(&self, own_id: ElementId) -> bool {
        self.canonical != own_id
    }
}

/// One position in a color's tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Occurrence {
    /// The stored element at this position.
    pub element: ElementId,
    /// The schema placement this position instantiates.
    pub placement: PlacementId,
    /// Parent occurrence within the same color.
    pub parent: Option<OccId>,
    /// DFS interval start.
    pub start: u32,
    /// DFS interval end (`start < desc.start && desc.end <= end` ⇔ ancestor).
    pub end: u32,
    /// Depth in the color tree.
    pub level: u16,
}

/// One color's labelled tree.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ColorTree {
    /// Occurrences in document (DFS/start) order.
    pub(crate) occs: Vec<Occurrence>,
    /// Occurrence ids per placement, in document order.
    pub(crate) by_placement: HashMap<PlacementId, Vec<OccId>>,
    /// Occurrence ids per ER node type (label), in document order — XPath
    /// steps match labels, not placements.
    pub(crate) by_node: HashMap<NodeId, Vec<OccId>>,
}

impl ColorTree {
    /// A tree over already-labelled occurrences, with the derived
    /// per-placement/per-node indexes left empty (the storage loader fills
    /// them via [`rebuild_indexes_into`]).
    pub(crate) fn from_occs(occs: Vec<Occurrence>) -> ColorTree {
        ColorTree { occs, ..ColorTree::default() }
    }

    /// All occurrences, in document order (sorted by `start`).
    pub fn occs(&self) -> &[Occurrence] {
        &self.occs
    }

    /// The occurrence with the given id.
    pub fn occ(&self, o: OccId) -> &Occurrence {
        &self.occs[o.idx()]
    }

    /// Occurrence ids instantiating a placement, in document order.
    pub fn of_placement(&self, p: PlacementId) -> &[OccId] {
        self.by_placement.get(&p).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Occurrence ids of every element labelled with the ER node type, in
    /// document order (all placements of the node in this color).
    pub fn of_node(&self, n: NodeId) -> &[OccId] {
        self.by_node.get(&n).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether `anc` is a proper ancestor of `desc` (interval containment).
    pub fn is_ancestor(&self, anc: OccId, desc: OccId) -> bool {
        let a = self.occ(anc);
        let d = self.occ(desc);
        a.start < d.start && d.end <= a.end
    }
}

/// Per color, the occurrences of each logical instance `(node, ordinal)`.
type LogicalOccs = Vec<HashMap<(NodeId, u32), Vec<OccId>>>;

/// A complete stored database over one schema.
///
/// Every bulk structure sits behind an [`Arc`], so cloning a database —
/// and therefore taking a [`Snapshot`] — costs a handful of refcount bumps
/// plus a schema clone, never a data copy. Mutators go through
/// [`Arc::make_mut`]: while no snapshot shares a structure the write lands
/// in place; once a snapshot does, the structure is copied first
/// (copy-on-write), so every outstanding snapshot keeps reading the exact
/// pre-write version of the extents, color trees, value index and
/// statistics catalog it was taken over. The [`Database::epoch`] counter
/// stamps committed mutations so versions are distinguishable.
#[derive(Debug, Clone)]
pub struct Database {
    /// The schema this database conforms to.
    pub schema: MctSchema,
    pub(crate) elements: Arc<Vec<Element>>,
    pub(crate) colors: Arc<Vec<ColorTree>>,
    /// **Live** canonical elements per ER node type (the extent), in
    /// ascending `ElementId` order (which is also insertion order).
    /// Deletes retract their entry — scans and reference joins walk live
    /// instances only.
    pub(crate) extents: Arc<Vec<Vec<ElementId>>>,
    /// Per ER node type: ordinal → canonical element, the id→element index
    /// behind link/idref resolution. Append-only and dense —
    /// `by_ordinal[n][k]` is the instance with ordinal `k` — it never
    /// shrinks: deletes tombstone the slot (see [`Database::canonical_by_ordinal`])
    /// so ordinals are never reused.
    pub(crate) by_ordinal: Arc<Vec<Vec<ElementId>>>,
    /// Per color: occurrences of each logical instance `(node, ordinal)`.
    pub(crate) logical_occs: Arc<LogicalOccs>,
    /// Per ER edge: participant ordinal per relationship ordinal — the
    /// parent-child adjacency the trees encode, stored explicitly so that
    /// link (parent-child) joins stay exact under any schema and so that
    /// update cascades can follow existing links. `u32::MAX` marks a
    /// deleted link.
    pub(crate) links: Arc<Vec<Vec<u32>>>,
    /// Per ER edge: relationship ordinals per participant ordinal.
    pub(crate) rev_links: Arc<Vec<Vec<Vec<u32>>>>,
    /// Text symbol table: every stored text attribute value is interned, so
    /// join keys are `Copy` (see [`crate::value::ValueKey`]).
    pub(crate) interner: Arc<Interner>,
    /// Sorted `(node, attr, key, element)` postings over canonical
    /// elements — the persistent attribute/id value index (DESIGN.md §10).
    /// Built at `finish`, maintained by [`Database::write_attr`],
    /// [`Database::insert_element`] and
    /// [`Database::remove_element_occurrences`]; invariant under relabels
    /// because it is keyed by element, not occurrence.
    pub(crate) value_index: Arc<ValueIndex>,
    /// Statistics catalog: column histograms/distinct counts, extent
    /// cardinalities, per-placement occurrence counts (DESIGN.md §11).
    /// Built at `finish`, maintained by the same choke points as the value
    /// index plus [`Database::relabel_color`].
    pub(crate) statistics: Arc<Statistics>,
    /// Kernel-dispatch and planner mode; see [`KernelDispatch`]. The
    /// differential property tests and the oracle sweep flip this to pin
    /// fast ≡ reference on the same database.
    pub(crate) dispatch: KernelDispatch,
    /// Version counter: bumped by every committed mutation (writes,
    /// inserts, deletes, occurrence edits, link edits, relabels).
    pub(crate) epoch: u64,
    /// How this database is backed (DESIGN.md §14): the pure heap by
    /// default, or attached to a paged [`crate::page::StorageBackend`]
    /// with a segment directory and dirty-segment tracking. Excluded from
    /// [`Database::same_state`] — backing is orthogonal to content.
    pub(crate) storage: Storage,
}

/// A consistent read view of a [`Database`] at one [`epoch`](Database::epoch).
///
/// Cheap to take ([`Database::snapshot`] clones `Arc` handles, not data)
/// and independent of the source afterwards: a writer mutating the
/// database copies any shared structure before touching it, so every
/// kernel family — reference, indexed, cost-based — executed against the
/// snapshot answers from exactly the pre-mutation version. `Snapshot`
/// derefs to [`Database`], so the whole read API (and the query layer's
/// `compile`/`optimize`/`execute`) accepts `&snapshot` wherever it accepts
/// `&Database`. A snapshot is `Send + Sync`: concurrent readers on other
/// threads keep answering from it while the writer proceeds.
#[derive(Debug, Clone)]
pub struct Snapshot {
    db: Database,
}

impl Snapshot {
    /// The epoch the snapshot was taken at.
    pub fn epoch(&self) -> u64 {
        self.db.epoch
    }

    /// The frozen database version.
    pub fn database(&self) -> &Database {
        &self.db
    }
}

impl Deref for Snapshot {
    type Target = Database;

    fn deref(&self) -> &Database {
        &self.db
    }
}

impl Database {
    /// All stored elements.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// The element with the given id.
    pub fn element(&self, e: ElementId) -> &Element {
        &self.elements[e.idx()]
    }

    /// Write one attribute value, interning text so the value stays
    /// joinable through the `Copy` key path, and (for canonical elements)
    /// moving the value-index posting from the old key to the new one.
    /// This is the **only** attribute write path — there is deliberately no
    /// raw mutable element access, so the index cannot go stale.
    pub fn write_attr(&mut self, e: ElementId, attr: usize, v: Value) {
        if let Value::Text(s) = &v {
            if self.interner.get(s).is_none() {
                shadow::new_symbol(s);
                self.storage.mark(SegId::Symbols);
            }
            Arc::make_mut(&mut self.interner).intern(s);
        }
        shadow::write(e, attr);
        self.storage.mark(SegId::Elements);
        let new_key = self.interner.key(&v);
        let el = &mut Arc::make_mut(&mut self.elements)[e.idx()];
        let old = std::mem::replace(&mut el.attrs[attr], v);
        let (node, is_canonical) = (el.node, el.canonical == e);
        if is_canonical {
            shadow::posting(node, attr, e);
            shadow::stat_column(node, attr);
            self.storage.mark(SegId::Postings);
            // stored values are always interned, but stay total if not
            if let Some(old_key) = self.interner.try_key(&old) {
                Arc::make_mut(&mut self.value_index).reindex(node, attr, e, old_key, new_key);
            } else {
                Arc::make_mut(&mut self.value_index).insert(IndexEntry {
                    node,
                    attr: attr as u32,
                    key: new_key,
                    element: e,
                });
            }
            // the statistics catalog rides the same choke point: the
            // changed column is recomputed from the index, so the catalog
            // never drifts from a from-scratch build
            Arc::make_mut(&mut self.statistics).refresh_column(
                node,
                attr,
                &self.value_index,
                &self.interner,
            );
        }
        self.epoch += 1;
    }

    /// The statistics catalog (DESIGN.md §11): column histograms, distinct
    /// counts, extent cardinalities, per-placement occurrence counts.
    pub fn statistics(&self) -> &Statistics {
        &self.statistics
    }

    /// Estimated number of canonical `node` elements whose attribute `attr`
    /// satisfies `<op> value`, from the column histogram. The absolute
    /// error is bounded by `statistics().max_bucket_rows(node, attr)`.
    pub fn estimate_predicate_matches(
        &self,
        node: NodeId,
        attr: usize,
        kind: CmpKind,
        value: &Value,
    ) -> Cardinality {
        self.statistics
            .estimate_matches(node, attr, kind, |k| self.interner.key_value_cmp(k, value))
    }

    /// The persistent attribute/id value index.
    pub fn value_index(&self) -> &ValueIndex {
        &self.value_index
    }

    /// Whether execution is pinned to the reference kernels (linear scans,
    /// stack-merge joins, per-op hash builds) instead of the index/gallop
    /// fast paths. Answers must be byte-identical either way; the
    /// differential tests and the oracle sweep compare both.
    pub fn reference_kernels(&self) -> bool {
        self.dispatch == KernelDispatch::Reference
    }

    /// Pin (or unpin) execution to the reference kernels. Pinning **also
    /// pins the planner to heuristic mode** (the query layer's `optimize`
    /// consults [`Database::kernel_dispatch`]), so a reference differential
    /// compares exactly one variable — the kernels — never kernels and plan
    /// shape at once. Unpinning restores the cost-model default.
    pub fn set_reference_kernels(&mut self, on: bool) {
        self.dispatch = if on { KernelDispatch::Reference } else { KernelDispatch::CostModel };
    }

    /// The kernel-dispatch / planner mode.
    pub fn kernel_dispatch(&self) -> KernelDispatch {
        self.dispatch
    }

    /// Set the kernel-dispatch / planner mode directly — e.g.
    /// [`KernelDispatch::Ratio`] for an optimizer differential (heuristic
    /// planning, fixed-ratio gallop dispatch) against the cost-model
    /// default.
    pub fn set_kernel_dispatch(&mut self, dispatch: KernelDispatch) {
        self.dispatch = dispatch;
    }

    /// The text symbol table.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// The `Copy` join key of a value under this database's symbol table.
    /// Never allocates. Panics on text never stored in this database (all
    /// build and write paths intern).
    pub fn join_key(&self, v: &Value) -> ValueKey {
        self.interner.key(v)
    }

    /// Non-panicking [`Database::join_key`]: `None` for text never stored
    /// in this database (such a value can match nothing).
    pub fn try_join_key(&self, v: &Value) -> Option<ValueKey> {
        self.interner.try_key(v)
    }

    /// The tree of one color.
    pub fn color(&self, c: ColorId) -> &ColorTree {
        &self.colors[c.idx()]
    }

    /// Number of colors.
    pub fn color_count(&self) -> usize {
        self.colors.len()
    }

    /// **Live** canonical elements (the logical extent) of an ER node
    /// type, in ascending id order. Deleted instances are absent — use
    /// [`Database::canonical_by_ordinal`] to resolve stored ordinals.
    pub fn extent(&self, node: NodeId) -> &[ElementId] {
        &self.extents[node.idx()]
    }

    /// The canonical element of logical instance `(node, ordinal)`, or
    /// `None` when the ordinal was never assigned or the instance has been
    /// deleted. Ordinals are append-only and never reused, so a stored
    /// link or idref value can only resolve to the element it always named
    /// — or to nothing.
    pub fn canonical_by_ordinal(&self, node: NodeId, ordinal: u32) -> Option<ElementId> {
        let &e = self.by_ordinal.get(node.idx())?.get(ordinal as usize)?;
        (e != TOMBSTONE).then_some(e)
    }

    /// Number of ordinals ever assigned for `node` — the ordinal the next
    /// insert receives, and the watermark insert cascades compare link
    /// ordinals against. Unlike `extent(node).len()`, this never
    /// decreases.
    pub fn ordinal_count(&self, node: NodeId) -> u32 {
        self.by_ordinal.get(node.idx()).map_or(0, |v| v.len() as u32)
    }

    /// Whether the logical instance behind `e` (canonical or copy) is
    /// live, i.e. has not been deleted.
    pub fn is_live(&self, e: ElementId) -> bool {
        let canon = self.element(e).canonical;
        let el = self.element(canon);
        self.canonical_by_ordinal(el.node, el.ordinal) == Some(canon)
    }

    /// The version counter: bumped by every committed mutation. A
    /// [`Snapshot`] with the same epoch as a database derived from it holds
    /// byte-identical data.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Take a consistent read snapshot of the current version — a few
    /// `Arc` bumps plus a schema clone, never a data copy. Writers
    /// proceeding on `self` copy shared structures before mutating them,
    /// so the snapshot keeps answering from the pre-write version.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot { db: self.clone() }
    }

    /// Occurrences of the logical instance behind `e` in color `c` — the
    /// *color crossing* primitive, and the duplicate-expansion step for
    /// un-normalized schemas.
    pub fn occurrences_of_logical(&self, c: ColorId, e: ElementId) -> &[OccId] {
        let el = self.element(e);
        let canon = self.element(el.canonical);
        self.logical_occs[c.idx()]
            .get(&(canon.node, canon.ordinal))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Attribute index of `attr` in the ER node's declaration.
    pub fn attr_index(&self, graph: &ErGraph, node: NodeId, attr: &str) -> Option<usize> {
        graph.node(node).attributes.iter().position(|a| a.name == attr)
    }

    /// Attribute index (within the relationship element's stored attribute
    /// vector) of the idref value for a value-encoded ER edge: idref values
    /// are appended after the declared attributes, in the order the schema
    /// lists its idref links for that relationship.
    pub fn idref_attr_index(&self, graph: &ErGraph, edge: colorist_er::EdgeId) -> Option<usize> {
        let rel = graph.edge(edge).rel;
        let declared = graph.node(rel).attributes.len();
        self.schema
            .idrefs()
            .iter()
            .filter(|l| graph.edge(l.edge).rel == rel)
            .position(|l| l.edge == edge)
            .map(|pos| declared + pos)
    }

    /// Total number of stored elements (canonical + copies).
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    /// The participant ordinal linked to relationship instance
    /// `rel_ordinal` via `edge` (`None` if the link was deleted).
    pub fn link(&self, edge: colorist_er::EdgeId, rel_ordinal: u32) -> Option<u32> {
        let v = self.links.get(edge.idx())?.get(rel_ordinal as usize).copied()?;
        (v != u32::MAX).then_some(v)
    }

    /// Relationship ordinals linked to participant instance
    /// `participant_ordinal` via `edge` (deleted links excluded).
    pub fn linked_rels(&self, edge: colorist_er::EdgeId, participant_ordinal: u32) -> Vec<u32> {
        let rels = match self
            .rev_links
            .get(edge.idx())
            .and_then(|rv| rv.get(participant_ordinal as usize))
        {
            Some(v) => v,
            None => return Vec::new(),
        };
        rels.iter().copied().filter(|&r| self.links[edge.idx()][r as usize] != u32::MAX).collect()
    }

    /// Record a new relationship instance's link (insert maintenance).
    /// `rel_ordinal` must be the next dense ordinal for the edge.
    pub fn push_link(&mut self, edge: colorist_er::EdgeId, rel_ordinal: u32, participant: u32) {
        shadow::link(edge, rel_ordinal);
        self.storage.mark(SegId::Links);
        self.storage.mark(SegId::RevLinks);
        let links = Arc::make_mut(&mut self.links);
        let rev_links = Arc::make_mut(&mut self.rev_links);
        if links.len() <= edge.idx() {
            links.resize(edge.idx() + 1, Vec::new());
            rev_links.resize(edge.idx() + 1, Vec::new());
        }
        let v = &mut links[edge.idx()];
        assert_eq!(v.len(), rel_ordinal as usize, "link ordinals must stay dense");
        v.push(participant);
        let rv = &mut rev_links[edge.idx()];
        if rv.len() <= participant as usize {
            rv.resize(participant as usize + 1, Vec::new());
        }
        rv[participant as usize].push(rel_ordinal);
        self.epoch += 1;
    }

    /// Invalidate a relationship instance's link (delete maintenance).
    pub fn kill_link(&mut self, edge: colorist_er::EdgeId, rel_ordinal: u32) {
        if let Some(v) = Arc::make_mut(&mut self.links)
            .get_mut(edge.idx())
            .and_then(|l| l.get_mut(rel_ordinal as usize))
        {
            *v = u32::MAX;
            shadow::link(edge, rel_ordinal);
            self.storage.mark(SegId::Links);
        }
        self.epoch += 1;
    }

    /// Invalidate every link entry touching a deleted instance: a
    /// relationship loses its own links; a participant kills the links of
    /// every relationship instance referencing it (those relationship
    /// elements are about to lose their occurrences as well, structurally
    /// or through their own delete op).
    pub fn kill_links_of(&mut self, graph: &ErGraph, t: ElementId) {
        let el = self.element(t);
        let (node, ordinal) = (el.node, el.ordinal);
        for &(e, _) in graph.incident(node) {
            let edge = graph.edge(e);
            if edge.rel == node {
                self.kill_link(e, ordinal);
            } else {
                for ro in self.linked_rels(e, ordinal) {
                    // kill the whole relationship instance (both edges)
                    let rel = edge.rel;
                    for &(e2, _) in graph.incident(rel) {
                        if graph.edge(e2).rel == rel {
                            self.kill_link(e2, ro);
                        }
                    }
                }
            }
        }
    }

    /// Recompute a color's interval labels after structural updates.
    /// (Linear; the engine relabels eagerly after each update batch, which
    /// is charged to update cost like TIMBER's index maintenance.)
    pub fn relabel_color(&mut self, c: ColorId) {
        shadow::color(c);
        shadow::placement_stats();
        self.storage.mark(SegId::Tree(c.0));
        {
            let colors = Arc::make_mut(&mut self.colors);
            let tree = &mut colors[c.idx()];
            relabel(&mut tree.occs);
            let logical_occs = Arc::make_mut(&mut self.logical_occs);
            rebuild_tree_indexes(tree, c, &self.elements, logical_occs);
        }
        // structural updates funnel through here, so this is the one
        // maintenance point the placement-occurrence summaries need
        let occs = placement_occ_counts(&self.schema, &self.colors);
        Arc::make_mut(&mut self.statistics).set_placement_occs(occs);
        self.epoch += 1;
    }

    /// Insert a new canonical element, returning its id. The caller must
    /// add occurrences (then relabel) to make it reachable. Adds one value
    /// index posting per attribute. The new instance's ordinal comes from
    /// the append-only ordinal index, **not** from the extent length — the
    /// two diverge once anything has been deleted.
    pub fn insert_element(&mut self, node: NodeId, attrs: Vec<Value>) -> ElementId {
        {
            for v in &attrs {
                if let Value::Text(s) = v {
                    if self.interner.get(s).is_none() {
                        shadow::new_symbol(s);
                        self.storage.mark(SegId::Symbols);
                    }
                }
            }
            let interner = Arc::make_mut(&mut self.interner);
            for v in &attrs {
                if let Value::Text(s) = v {
                    interner.intern(s);
                }
            }
        }
        let id = ElementId(self.elements.len() as u32);
        let ordinal = self.by_ordinal[node.idx()].len() as u32;
        shadow::alloc(id);
        shadow::ordinal(node, ordinal);
        shadow::extent(node);
        shadow::stat_node(node);
        self.storage.mark(SegId::Elements);
        self.storage.mark(SegId::Ordinals);
        self.storage.mark(SegId::Postings);
        {
            let index = Arc::make_mut(&mut self.value_index);
            for (a, v) in attrs.iter().enumerate() {
                shadow::posting(node, a, id);
                shadow::stat_column(node, a);
                index.insert(IndexEntry {
                    node,
                    attr: a as u32,
                    key: self.interner.key(v),
                    element: id,
                });
            }
        }
        let arity = attrs.len();
        Arc::make_mut(&mut self.elements).push(Element { node, ordinal, canonical: id, attrs });
        Arc::make_mut(&mut self.extents)[node.idx()].push(id);
        Arc::make_mut(&mut self.by_ordinal)[node.idx()].push(id);
        let statistics = Arc::make_mut(&mut self.statistics);
        statistics.note_insert(node);
        for a in 0..arity {
            statistics.refresh_column(node, a, &self.value_index, &self.interner);
        }
        self.epoch += 1;
        id
    }

    /// Insert a copy of an existing element (un-normalized maintenance).
    ///
    /// Copies are **occurrence-only**: they are reachable exclusively
    /// through the color trees. The extent, the ordinal index, the value
    /// index and the statistics catalog all track canonical elements only
    /// — the same invariant [`DatabaseBuilder::add_copy`] maintains and
    /// [`Database::check_integrity`] audits (S008) — so a copy registers
    /// in none of them; its attribute values mirror the canonical's
    /// postings.
    pub fn insert_copy(&mut self, of: ElementId) -> ElementId {
        let canon = self.element(of).canonical;
        debug_assert!(self.is_live(canon), "insert_copy of a deleted instance");
        let src = self.element(canon).clone();
        let id = ElementId(self.elements.len() as u32);
        shadow::alloc(id);
        self.storage.mark(SegId::Elements);
        Arc::make_mut(&mut self.elements).push(Element { canonical: canon, ..src });
        self.epoch += 1;
        id
    }

    /// Append an occurrence to a color (labels stale until
    /// [`Database::relabel_color`]).
    pub fn push_occurrence(
        &mut self,
        c: ColorId,
        element: ElementId,
        placement: PlacementId,
        parent: Option<OccId>,
    ) -> OccId {
        shadow::color(c);
        shadow::occ_element(self.element(element).canonical);
        self.storage.mark(SegId::Tree(c.0));
        let tree = &mut Arc::make_mut(&mut self.colors)[c.idx()];
        let id = OccId(tree.occs.len() as u32);
        tree.occs.push(Occurrence { element, placement, parent, start: 0, end: 0, level: 0 });
        self.epoch += 1;
        id
    }

    /// Remove occurrences (by id) from a color; parents of surviving
    /// occurrences are remapped; labels must be recomputed afterwards.
    /// Returns the number removed (descendants of removed occurrences are
    /// removed transitively).
    pub fn remove_occurrences(&mut self, c: ColorId, remove: &[OccId]) -> usize {
        shadow::color(c);
        self.storage.mark(SegId::Tree(c.0));
        self.epoch += 1;
        let tree = &mut Arc::make_mut(&mut self.colors)[c.idx()];
        let n = tree.occs.len();
        let mut dead = vec![false; n];
        for &o in remove {
            dead[o.idx()] = true;
        }
        // transitive: occurrences are stored with parents before children
        // only pre-relabel; walk via parent chain instead to be safe.
        for i in 0..n {
            let mut cur = i;
            loop {
                if dead[cur] {
                    dead[i] = true;
                    break;
                }
                match tree.occs[cur].parent {
                    Some(p) => cur = p.idx(),
                    None => break,
                }
            }
        }
        let mut remap = vec![OccId(u32::MAX); n];
        let mut kept = Vec::with_capacity(n);
        for (i, occ) in tree.occs.iter().enumerate() {
            if !dead[i] {
                remap[i] = OccId(kept.len() as u32);
                kept.push(*occ);
            }
        }
        for occ in &mut kept {
            occ.parent = occ.parent.map(|p| remap[p.idx()]);
        }
        let removed = n - kept.len();
        tree.occs = kept;
        removed
    }

    /// Delete the logical instance behind `e` (canonical or copy): every
    /// occurrence of its canonical element **and of every physical copy**
    /// leaves every color (subtrees included), and the derived structures
    /// retract with it — the extent entry, the per-attribute value-index
    /// postings, and the statistics contribution (`note_delete` plus a
    /// `refresh_column` per attribute) — mirroring
    /// [`Database::insert_element`]'s maintenance so deletes go through
    /// one audited path just like [`Database::write_attr`]. The ordinal
    /// slot is tombstoned, never reused: stale links and idref values
    /// resolve to `None` from then on.
    ///
    /// Idempotent: a second call for the same instance (or for one of its
    /// copies) removes nothing and retracts nothing. Relabels every
    /// affected color. Returns the number of occurrences removed.
    pub fn remove_element_occurrences(&mut self, e: ElementId) -> usize {
        let canon = self.element(e).canonical;
        let mut total = 0;
        for c in 0..self.colors.len() {
            let c = ColorId(c as u16);
            // match the whole logical instance — copies carry their own
            // ElementId, so matching `o.element == e` would leave their
            // occurrences behind on DEEP/UNDR
            let doomed: Vec<OccId> = self.colors[c.idx()]
                .occs
                .iter()
                .enumerate()
                .filter(|(_, o)| self.elements[o.element.idx()].canonical == canon)
                .map(|(i, _)| OccId(i as u32))
                .collect();
            if !doomed.is_empty() {
                total += self.remove_occurrences(c, &doomed);
                self.relabel_color(c);
            }
        }
        let (node, ordinal) = {
            let el = self.element(canon);
            (el.node, el.ordinal)
        };
        if self.canonical_by_ordinal(node, ordinal) == Some(canon) {
            // first delete of this instance: retract the derived structures
            shadow::deleted(canon);
            shadow::ordinal(node, ordinal);
            shadow::extent(node);
            shadow::stat_node(node);
            self.storage.mark(SegId::Ordinals);
            self.storage.mark(SegId::Postings);
            Arc::make_mut(&mut self.by_ordinal)[node.idx()][ordinal as usize] = TOMBSTONE;
            let extent = &mut Arc::make_mut(&mut self.extents)[node.idx()];
            if let Ok(pos) = extent.binary_search(&canon) {
                extent.remove(pos);
            }
            let arity = self.element(canon).attrs.len();
            {
                let index = Arc::make_mut(&mut self.value_index);
                for a in 0..arity {
                    shadow::posting(node, a, canon);
                    shadow::stat_column(node, a);
                    // stored values are always interned, but stay total
                    if let Some(key) = self.interner.try_key(&self.elements[canon.idx()].attrs[a]) {
                        index.remove(IndexEntry { node, attr: a as u32, key, element: canon });
                    }
                }
            }
            let statistics = Arc::make_mut(&mut self.statistics);
            statistics.note_delete(node);
            for a in 0..arity {
                statistics.refresh_column(node, a, &self.value_index, &self.interner);
            }
            self.epoch += 1;
        }
        total
    }

    /// S008 — extent/element/index desync audit. Checks the invariants the
    /// mutation choke points maintain: extents list exactly the live
    /// canonical elements of their node in ascending order; every live
    /// ordinal slot round-trips through its element; copies are
    /// unreachable from extents, the ordinal index, and the value index;
    /// no color tree holds an occurrence of a deleted instance; value-index
    /// postings cover live canonicals exactly once per attribute; and the
    /// statistics catalog's extent cardinalities match the extents.
    /// Returns the first violation as `Err("S008: …")`.
    pub fn check_integrity(&self) -> Result<(), String> {
        let fail = |msg: String| Err(format!("S008: {msg}"));
        for (n, extent) in self.extents.iter().enumerate() {
            let node = NodeId(n as u32);
            for w in extent.windows(2) {
                if w[0] >= w[1] {
                    return fail(format!("extent of node {n} is not in ascending id order"));
                }
            }
            for &e in extent {
                let el = self.element(e);
                if el.canonical != e {
                    return fail(format!("extent of node {n} lists copy {e}"));
                }
                if el.node != node {
                    return fail(format!("extent of node {n} lists {e} of node {}", el.node.0));
                }
                if self.canonical_by_ordinal(node, el.ordinal) != Some(e) {
                    return fail(format!(
                        "extent of node {n} lists {e} but ordinal {} does not resolve to it",
                        el.ordinal
                    ));
                }
            }
            if self.statistics.extent_rows(node) != extent.len() as u64 {
                return fail(format!(
                    "statistics extent_rows of node {n} is {} but the extent holds {}",
                    self.statistics.extent_rows(node),
                    extent.len()
                ));
            }
            if let Some(&e0) = extent.first() {
                for a in 0..self.element(e0).attrs.len() {
                    let postings = self.value_index.of_attr(node, a).len();
                    if postings != extent.len() {
                        return fail(format!(
                            "value index holds {postings} postings for (node {n}, attr {a}) \
                             over an extent of {}",
                            extent.len()
                        ));
                    }
                }
            }
        }
        for (n, slots) in self.by_ordinal.iter().enumerate() {
            let node = NodeId(n as u32);
            for (k, &e) in slots.iter().enumerate() {
                if e == TOMBSTONE {
                    continue;
                }
                let el = self.element(e);
                if el.node != node || el.ordinal as usize != k || el.canonical != e {
                    return fail(format!("ordinal slot ({n}, {k}) holds mismatched element {e}"));
                }
                if self.extents[n].binary_search(&e).is_err() {
                    return fail(format!("live ordinal slot ({n}, {k}) missing from the extent"));
                }
            }
        }
        for (ci, tree) in self.colors.iter().enumerate() {
            for o in &tree.occs {
                if !self.is_live(o.element) {
                    return fail(format!(
                        "color {ci} holds an occurrence of deleted element {}",
                        o.element
                    ));
                }
            }
        }
        for en in self.value_index.entries() {
            let el = self.element(en.element);
            if el.canonical != en.element {
                return fail(format!("value index posts copy {}", en.element));
            }
            if el.node != en.node {
                return fail(format!(
                    "value index posting for {} names the wrong node",
                    en.element
                ));
            }
            if !self.is_live(en.element) {
                return fail(format!("value index posts deleted element {}", en.element));
            }
        }
        Ok(())
    }

    /// Overwrite the epoch counter. Crate-internal: the commit scheduler
    /// normalizes a group-committed class to one epoch bump.
    pub(crate) fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Whether the link table holds a cell for `(edge, rel_ordinal)` —
    /// live **or** already killed. The static effect analysis needs this
    /// distinction ([`Database::link`] conflates dead and absent):
    /// [`Database::kill_link`] touches a dead cell but not an absent one.
    pub(crate) fn link_slot_exists(&self, edge: colorist_er::EdgeId, rel_ordinal: u32) -> bool {
        self.links.get(edge.idx()).is_some_and(|l| (rel_ordinal as usize) < l.len())
    }

    /// Deep structural equality of two databases over the same schema:
    /// elements, color trees, extents, ordinal index, logical-occurrence
    /// maps, link tables, symbol table, value index, statistics catalog,
    /// dispatch mode — and, when `include_epoch`, the version counter.
    /// Returns the first mismatching structure by name. This is the
    /// oracle's "byte-identical final state" assertion behind the B003
    /// commutativity certificates (the schema itself is not compared; both
    /// sides of a commutativity check are derived from one database).
    pub fn same_state(&self, other: &Database, include_epoch: bool) -> Result<(), String> {
        let check = |ok: bool, what: &str| {
            if ok {
                Ok(())
            } else {
                Err(format!("databases differ in {what}"))
            }
        };
        check(self.elements == other.elements, "elements")?;
        check(self.colors == other.colors, "color trees")?;
        check(self.extents == other.extents, "extents")?;
        check(self.by_ordinal == other.by_ordinal, "ordinal index")?;
        check(self.logical_occs == other.logical_occs, "logical occurrences")?;
        check(self.links == other.links, "link tables")?;
        check(self.rev_links == other.rev_links, "reverse link tables")?;
        check(self.interner == other.interner, "symbol table")?;
        check(self.value_index == other.value_index, "value index")?;
        check(self.statistics == other.statistics, "statistics catalog")?;
        check(self.dispatch == other.dispatch, "kernel dispatch")?;
        if include_epoch {
            check(self.epoch == other.epoch, "epoch")?;
        }
        Ok(())
    }
}

/// Incremental builder used by the materializer.
#[derive(Debug)]
pub struct DatabaseBuilder {
    schema: MctSchema,
    elements: Vec<Element>,
    extents: Vec<Vec<ElementId>>,
    colors: Vec<ColorTree>,
    links: Vec<Vec<u32>>,
}

impl DatabaseBuilder {
    /// Start building a database for `schema` over a graph with
    /// `node_count` ER node types.
    pub fn new(schema: MctSchema, node_count: usize) -> Self {
        let colors = (0..schema.color_count()).map(|_| ColorTree::default()).collect();
        DatabaseBuilder {
            schema,
            elements: Vec::new(),
            extents: vec![Vec::new(); node_count],
            colors,
            links: Vec::new(),
        }
    }

    /// Provide the per-edge link vectors (participant ordinal per
    /// relationship ordinal), as produced by the canonical instance.
    pub fn set_links(&mut self, links: Vec<Vec<u32>>) {
        self.links = links;
    }

    /// The schema being populated.
    pub fn schema(&self) -> &MctSchema {
        &self.schema
    }

    /// Add the canonical element of logical instance `(node, ordinal)`.
    /// Ordinals must arrive densely in order per node.
    pub fn add_canonical(&mut self, node: NodeId, attrs: Vec<Value>) -> ElementId {
        let id = ElementId(self.elements.len() as u32);
        let ordinal = self.extents[node.idx()].len() as u32;
        self.elements.push(Element { node, ordinal, canonical: id, attrs });
        self.extents[node.idx()].push(id);
        id
    }

    /// Add a physical copy of a canonical element.
    pub fn add_copy(&mut self, of: ElementId) -> ElementId {
        let src = self.elements[of.idx()].clone();
        debug_assert_eq!(src.canonical, of, "copies must reference canonical elements");
        let id = ElementId(self.elements.len() as u32);
        self.elements.push(Element { canonical: of, ..src });
        id
    }

    /// Add an occurrence (parents must be added before children).
    pub fn add_occurrence(
        &mut self,
        c: ColorId,
        element: ElementId,
        placement: PlacementId,
        parent: Option<OccId>,
    ) -> OccId {
        let tree = &mut self.colors[c.idx()];
        let id = OccId(tree.occs.len() as u32);
        debug_assert!(parent.is_none_or(|p| p.idx() < tree.occs.len()));
        tree.occs.push(Occurrence { element, placement, parent, start: 0, end: 0, level: 0 });
        id
    }

    /// Label every color and freeze. Interns every stored text attribute
    /// value so join keys are `Copy` from here on, and builds the
    /// persistent attribute/id value index over the canonical elements.
    pub fn finish(mut self) -> Database {
        let mut interner = Interner::default();
        for e in &self.elements {
            for v in &e.attrs {
                if let Value::Text(s) = v {
                    interner.intern(s);
                }
            }
        }
        let value_index = ValueIndex::build(&self.elements, &interner);
        let mut logical_occs = Vec::with_capacity(self.colors.len());
        for (ci, tree) in self.colors.iter_mut().enumerate() {
            relabel(&mut tree.occs);
            let mut lo = HashMap::new();
            rebuild_indexes_into(tree, ColorId(ci as u16), &self.elements, &mut lo);
            logical_occs.push(lo);
        }
        // reverse link index
        let mut rev_links: Vec<Vec<Vec<u32>>> = Vec::with_capacity(self.links.len());
        for per_edge in &self.links {
            let max = per_edge.iter().copied().max().map(|m| m as usize + 1).unwrap_or(0);
            let mut rv: Vec<Vec<u32>> = vec![Vec::new(); max];
            for (ro, &po) in per_edge.iter().enumerate() {
                rv[po as usize].push(ro as u32);
            }
            rev_links.push(rv);
        }
        let extent_rows = self.extents.iter().map(|e| e.len() as u64).collect();
        let statistics = Statistics::build(
            self.extents.len(),
            |n| self.extents[n].first().map_or(0, |&e| self.elements[e.idx()].attrs.len()),
            extent_rows,
            placement_occ_counts(&self.schema, &self.colors),
            &value_index,
            &interner,
        );
        // at build time every ordinal is live, so the ordinal index starts
        // as a copy of the extents and only ever diverges through deletes
        let by_ordinal = self.extents.clone();
        Database {
            schema: self.schema,
            elements: Arc::new(self.elements),
            colors: Arc::new(self.colors),
            extents: Arc::new(self.extents),
            by_ordinal: Arc::new(by_ordinal),
            logical_occs: Arc::new(logical_occs),
            links: Arc::new(self.links),
            rev_links: Arc::new(rev_links),
            interner: Arc::new(interner),
            value_index: Arc::new(value_index),
            statistics: Arc::new(statistics),
            dispatch: KernelDispatch::default(),
            epoch: 0,
            storage: Storage::default(),
        }
    }
}

/// Occurrence count per schema placement, over every color tree — the raw
/// material of the catalog's parent-fanout summaries.
pub(crate) fn placement_occ_counts(schema: &MctSchema, colors: &[ColorTree]) -> Vec<u64> {
    let mut counts = vec![0u64; schema.placements().len()];
    for tree in colors {
        for o in &tree.occs {
            counts[o.placement.idx()] += 1;
        }
    }
    counts
}

/// Assign `(start, end, level)` by DFS over the parent arrays; reorders the
/// occurrence vector into document order and remaps parents.
fn relabel(occs: &mut Vec<Occurrence>) {
    let n = occs.len();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut roots = Vec::new();
    for (i, o) in occs.iter().enumerate() {
        match o.parent {
            Some(p) => children[p.idx()].push(i),
            None => roots.push(i),
        }
    }
    let mut ordered: Vec<Occurrence> = Vec::with_capacity(n);
    let mut remap = vec![OccId(u32::MAX); n];
    let mut counter: u32 = 0;
    // iterative DFS with explicit post-processing for `end`
    enum Ev {
        Enter(usize, Option<OccId>, u16),
        Exit(usize),
    }
    let mut stack: Vec<Ev> = roots.into_iter().rev().map(|r| Ev::Enter(r, None, 0)).collect();
    while let Some(ev) = stack.pop() {
        match ev {
            Ev::Enter(i, parent, level) => {
                counter += 1;
                let new_id = OccId(ordered.len() as u32);
                remap[i] = new_id;
                ordered.push(Occurrence {
                    element: occs[i].element,
                    placement: occs[i].placement,
                    parent,
                    start: counter,
                    end: 0,
                    level,
                });
                stack.push(Ev::Exit(new_id.idx()));
                for &c in children[i].iter().rev() {
                    stack.push(Ev::Enter(c, Some(new_id), level + 1));
                }
            }
            Ev::Exit(new_idx) => {
                counter += 1;
                ordered[new_idx].end = counter;
            }
        }
    }
    assert_eq!(ordered.len(), n, "relabel lost occurrences (cycle in parents?)");
    *occs = ordered;
}

pub(crate) fn rebuild_indexes_into(
    tree: &mut ColorTree,
    _c: ColorId,
    elements: &[Element],
    logical: &mut HashMap<(NodeId, u32), Vec<OccId>>,
) {
    tree.by_placement.clear();
    tree.by_node.clear();
    logical.clear();
    for (i, o) in tree.occs.iter().enumerate() {
        let id = OccId(i as u32);
        tree.by_placement.entry(o.placement).or_default().push(id);
        let canon = &elements[elements[o.element.idx()].canonical.idx()];
        tree.by_node.entry(canon.node).or_default().push(id);
        logical.entry((canon.node, canon.ordinal)).or_default().push(id);
    }
}

fn rebuild_tree_indexes(
    tree: &mut ColorTree,
    c: ColorId,
    elements: &[Element],
    logical_occs: &mut [HashMap<(NodeId, u32), Vec<OccId>>],
) {
    rebuild_indexes_into(tree, c, elements, &mut logical_occs[c.idx()]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use colorist_er::{Attribute, ErDiagram};

    fn tiny() -> (ErGraph, MctSchema) {
        let mut d = ErDiagram::new("t");
        d.add_entity("a", vec![Attribute::key("id")]).unwrap();
        d.add_entity("b", vec![Attribute::key("id"), Attribute::text("x")]).unwrap();
        d.add_rel_1m("r", "a", "b").unwrap();
        let g = ErGraph::from_diagram(&d).unwrap();
        let s = colorist_core::design(&g, colorist_core::Strategy::En).unwrap();
        (g, s)
    }

    /// a0 -> r0 -> b0, a0 -> r1 -> b1, a1 (childless)
    fn build(g: &ErGraph, s: &MctSchema) -> Database {
        let a = g.node_by_name("a").unwrap();
        let b = g.node_by_name("b").unwrap();
        let r = g.node_by_name("r").unwrap();
        let c = ColorId(0);
        let pa = s.placements_of_in_color(a, c)[0];
        let pr = s.placements_of_in_color(r, c)[0];
        let pb = s.placements_of_in_color(b, c)[0];
        let mut bd = DatabaseBuilder::new(s.clone(), g.node_count());
        let ea0 = bd.add_canonical(a, vec![Value::Int(0)]);
        let ea1 = bd.add_canonical(a, vec![Value::Int(1)]);
        let er0 = bd.add_canonical(r, vec![]);
        let er1 = bd.add_canonical(r, vec![]);
        let eb0 = bd.add_canonical(b, vec![Value::Int(0), Value::Text("u".into())]);
        let eb1 = bd.add_canonical(b, vec![Value::Int(1), Value::Text("v".into())]);
        let oa0 = bd.add_occurrence(c, ea0, pa, None);
        let _oa1 = bd.add_occurrence(c, ea1, pa, None);
        let or0 = bd.add_occurrence(c, er0, pr, Some(oa0));
        let or1 = bd.add_occurrence(c, er1, pr, Some(oa0));
        bd.add_occurrence(c, eb0, pb, Some(or0));
        bd.add_occurrence(c, eb1, pb, Some(or1));
        bd.finish()
    }

    #[test]
    fn labels_nest_properly() {
        let (g, s) = tiny();
        let db = build(&g, &s);
        let t = db.color(ColorId(0));
        assert_eq!(t.occs().len(), 6);
        // document order by start, intervals well-formed
        let mut prev = 0;
        for o in t.occs() {
            assert!(o.start > prev, "document order violated");
            assert!(o.end > o.start);
            prev = o.start;
        }
        // parent intervals contain children
        for (i, o) in t.occs().iter().enumerate() {
            if let Some(p) = o.parent {
                assert!(t.is_ancestor(p, OccId(i as u32)));
                assert_eq!(t.occ(p).level + 1, o.level);
            }
        }
    }

    #[test]
    fn extents_and_logical_occurrences() {
        let (g, s) = tiny();
        let db = build(&g, &s);
        let a = g.node_by_name("a").unwrap();
        let b = g.node_by_name("b").unwrap();
        assert_eq!(db.extent(a).len(), 2);
        assert_eq!(db.extent(b).len(), 2);
        let eb0 = db.extent(b)[0];
        let occs = db.occurrences_of_logical(ColorId(0), eb0);
        assert_eq!(occs.len(), 1);
        assert_eq!(db.color(ColorId(0)).occ(occs[0]).element, eb0);
    }

    #[test]
    fn copies_share_logical_identity() {
        let (g, s) = tiny();
        let mut db = build(&g, &s);
        let b = g.node_by_name("b").unwrap();
        let eb0 = db.extent(b)[0];
        let copy = db.insert_copy(eb0);
        assert!(db.element(copy).is_copy(copy));
        assert_eq!(db.element(copy).canonical, eb0);
        assert_eq!(db.element(copy).attrs, db.element(eb0).attrs);
        // place the copy under the other r occurrence and relabel
        let c = ColorId(0);
        let pb = db.schema.placements_of_in_color(b, c)[0];
        let parent = db
            .color(c)
            .of_placement(db.schema.placements_of_in_color(g.node_by_name("r").unwrap(), c)[0])[0];
        db.push_occurrence(c, copy, pb, Some(parent));
        db.relabel_color(c);
        assert_eq!(db.occurrences_of_logical(c, eb0).len(), 2);
    }

    #[test]
    fn remove_occurrences_cascades() {
        let (g, s) = tiny();
        let mut db = build(&g, &s);
        let c = ColorId(0);
        let a = g.node_by_name("a").unwrap();
        // remove a0's occurrence: r0, r1, b0, b1 go with it
        let pa = db.schema.placements_of_in_color(a, c)[0];
        let oa0 = db.color(c).of_placement(pa)[0];
        let removed = db.remove_occurrences(c, &[oa0]);
        db.relabel_color(c);
        assert_eq!(removed, 5);
        assert_eq!(db.color(c).occs().len(), 1); // a1 remains
    }

    #[test]
    fn link_storage_push_kill_and_reverse() {
        let (g, s) = tiny();
        let mut db = build(&g, &s);
        let r = g.node_by_name("r").unwrap();
        let e_ra = g
            .edge_ids()
            .find(|&e| g.edge(e).rel == r && g.edge(e).participant == g.node_by_name("a").unwrap())
            .unwrap();
        // build() does not set links; push some for the two r instances
        db.push_link(e_ra, 0, 0);
        db.push_link(e_ra, 1, 0);
        assert_eq!(db.link(e_ra, 0), Some(0));
        assert_eq!(db.linked_rels(e_ra, 0), vec![0, 1]);
        db.kill_link(e_ra, 0);
        assert_eq!(db.link(e_ra, 0), None);
        assert_eq!(db.linked_rels(e_ra, 0), vec![1]);
        // out-of-range lookups are safe
        assert_eq!(db.link(e_ra, 99), None);
        assert!(db.linked_rels(e_ra, 99).is_empty());
    }

    #[test]
    fn remove_element_clears_all_colors() {
        let (g, s) = tiny();
        let mut db = build(&g, &s);
        let b = g.node_by_name("b").unwrap();
        let eb0 = db.extent(b)[0];
        let n = db.remove_element_occurrences(eb0);
        assert_eq!(n, 1);
        assert_eq!(db.color(ColorId(0)).occs().len(), 5);
    }

    #[test]
    fn delete_retracts_extent_index_and_statistics() {
        let (g, s) = tiny();
        let mut db = build(&g, &s);
        let b = g.node_by_name("b").unwrap();
        let eb0 = db.extent(b)[0];
        let key = db.join_key(&Value::Int(0));
        assert_eq!(db.value_index().matching(b, 0, key).len(), 1);
        db.remove_element_occurrences(eb0);
        // extent, ordinal resolution, postings and cardinality all retract
        assert_eq!(db.extent(b).len(), 1);
        assert!(!db.extent(b).contains(&eb0));
        assert_eq!(db.canonical_by_ordinal(b, 0), None);
        assert!(!db.is_live(eb0));
        assert!(db.value_index().matching(b, 0, key).is_empty());
        assert_eq!(db.statistics().extent_rows(b), 1);
        assert_eq!(db.check_integrity(), Ok(()));
        // ordinals are never reused: a later insert gets a fresh one
        let fresh = db.insert_element(b, vec![Value::Int(9), Value::Text("w".into())]);
        assert_eq!(db.element(fresh).ordinal, 2);
        assert_eq!(db.ordinal_count(b), 3);
    }

    #[test]
    fn delete_is_idempotent() {
        let (g, s) = tiny();
        let mut db = build(&g, &s);
        let b = g.node_by_name("b").unwrap();
        let eb0 = db.extent(b)[0];
        assert_eq!(db.remove_element_occurrences(eb0), 1);
        let epoch = db.epoch();
        assert_eq!(db.remove_element_occurrences(eb0), 0);
        assert_eq!(db.epoch(), epoch, "repeat delete must be a no-op");
        assert_eq!(db.statistics().extent_rows(b), 1);
        assert_eq!(db.check_integrity(), Ok(()));
    }

    #[test]
    fn delete_of_canonical_removes_copy_occurrences() {
        // the DEEP/UNDR shape: a duplicated placement holds a *copy*, and
        // deleting the instance (by canonical or copy id) must remove it
        let (g, s) = tiny();
        let mut db = build(&g, &s);
        let b = g.node_by_name("b").unwrap();
        let r = g.node_by_name("r").unwrap();
        let c = ColorId(0);
        let eb0 = db.extent(b)[0];
        let copy = db.insert_copy(eb0);
        let pb = db.schema.placements_of_in_color(b, c)[0];
        let parent = db.color(c).of_placement(db.schema.placements_of_in_color(r, c)[0])[1];
        db.push_occurrence(c, copy, pb, Some(parent));
        db.relabel_color(c);
        assert_eq!(db.occurrences_of_logical(c, eb0).len(), 2);
        // deleting via the copy's id resolves to the whole instance
        let n = db.remove_element_occurrences(copy);
        assert_eq!(n, 2, "canonical and copy occurrences must both go");
        assert!(db.color(c).occs().iter().all(|o| db.element(o.element).canonical != eb0));
        assert_eq!(db.check_integrity(), Ok(()));
    }

    #[test]
    fn snapshot_pins_the_pre_mutation_state() {
        let (g, s) = tiny();
        let mut db = build(&g, &s);
        let b = g.node_by_name("b").unwrap();
        let eb0 = db.extent(b)[0];
        let snap = db.snapshot();
        let epoch0 = db.epoch();
        db.write_attr(eb0, 1, Value::Text("changed".into()));
        db.remove_element_occurrences(db.extent(b)[1]);
        assert!(db.epoch() > epoch0);
        // the snapshot still sees both instances, the old value, the old
        // postings, and the old statistics
        assert_eq!(snap.epoch(), epoch0);
        assert_eq!(snap.extent(b).len(), 2);
        assert_eq!(snap.element(eb0).attrs[1], Value::Text("u".into()));
        assert_eq!(snap.statistics().extent_rows(b), 2);
        assert_eq!(snap.color(ColorId(0)).occs().len(), 6);
        assert_eq!(snap.check_integrity(), Ok(()));
        // and the live database moved on
        assert_eq!(db.extent(b).len(), 1);
        assert_eq!(db.element(eb0).attrs[1], Value::Text("changed".into()));
    }

    #[test]
    fn integrity_audit_names_each_structure() {
        // negative paths for each audited structure: break exactly one and
        // assert the S008 report names it, not merely that *something* fails
        let (g, s) = tiny();
        let db = build(&g, &s);
        assert_eq!(db.check_integrity(), Ok(()));
        let b = g.node_by_name("b").unwrap();
        // 1. extent slot: scrambled order
        {
            let mut broken = db.clone();
            Arc::make_mut(&mut broken.extents)[b.idx()].reverse();
            let err = broken.check_integrity().unwrap_err();
            assert!(err.contains("extent of node"), "{err}");
        }
        // 2. ordinal tombstone with a surviving extent entry
        {
            let mut broken = db.clone();
            Arc::make_mut(&mut broken.by_ordinal)[b.idx()][0] = TOMBSTONE;
            let err = broken.check_integrity().unwrap_err();
            assert!(err.contains("ordinal 0 does not resolve"), "{err}");
        }
        // 3. a retracted value-index posting
        {
            let mut broken = db.clone();
            let eb0 = broken.extent(b)[0];
            let key = broken.join_key(&Value::Int(0));
            Arc::make_mut(&mut broken.value_index).remove(IndexEntry {
                node: b,
                attr: 0,
                key,
                element: eb0,
            });
            let err = broken.check_integrity().unwrap_err();
            assert!(err.contains("value index holds"), "{err}");
        }
        // 4. a drifted statistics row
        {
            let mut broken = db.clone();
            Arc::make_mut(&mut broken.statistics).note_delete(b);
            let err = broken.check_integrity().unwrap_err();
            assert!(err.contains("statistics extent_rows"), "{err}");
        }
    }

    #[test]
    fn integrity_audit_reports_desync() {
        let (g, s) = tiny();
        let db = build(&g, &s);
        assert_eq!(db.check_integrity(), Ok(()));
        let b = g.node_by_name("b").unwrap();
        // manufacture each desync class the S008 audit exists for
        // 1. statistics retraction without a matching extent retraction
        {
            let mut broken = db.clone();
            Arc::make_mut(&mut broken.statistics).note_delete(b);
            let err = broken.check_integrity().unwrap_err();
            assert!(err.starts_with("S008"), "{err}");
        }
        // 2. a tombstoned ordinal whose extent entry survives (the pre-fix
        //    delete shape inverted: ordinal index and extent disagree)
        {
            let mut broken = db.clone();
            Arc::make_mut(&mut broken.by_ordinal)[b.idx()][0] = TOMBSTONE;
            let err = broken.check_integrity().unwrap_err();
            assert!(err.starts_with("S008"), "{err}");
        }
        // 3. a copy reachable from an extent
        {
            let mut broken = db.clone();
            let eb0 = broken.extent(b)[0];
            let copy = broken.insert_copy(eb0);
            Arc::make_mut(&mut broken.extents)[b.idx()].push(copy);
            let err = broken.check_integrity().unwrap_err();
            assert!(err.starts_with("S008"), "{err}");
        }
    }
}

//! Atomic update batches over [`Database`].
//!
//! An [`UpdateBatch`] collects many logical operations — attribute writes,
//! instance deletes, element inserts, occurrence edits — validates them
//! *together* against the pre-batch database (cross-op conflict detection,
//! arity and placement checks, per-color coverage so inter-color
//! constraints cannot be half-satisfied), and applies them atomically:
//! every mutation lands on a staged clone of the database's copy-on-write
//! state, and the live database only advances to the staged state when the
//! whole batch has succeeded. A reader holding a
//! [`Snapshot`](crate::database::Snapshot) taken before
//! [`UpdateBatch::apply`] keeps the pre-batch version of every structure
//! (extents, color trees, value index, statistics catalog) and never
//! observes a half-applied batch — the shape GroveDB's `batch.rs` gives
//! its merkle subtrees, transplanted onto MCT color forests.
//!
//! Duplicate maintenance is included: an attribute write fans out to every
//! physical copy of the instance, and a delete removes the occurrences of
//! the canonical element *and* of all its copies, retracting the extent
//! entry, value-index postings and statistics contribution through the
//! audited [`Database::remove_element_occurrences`] path.

use std::collections::{HashMap, HashSet};
use std::fmt;

use colorist_er::{EdgeId, ErGraph, NodeId};
use colorist_mct::{ColorId, PlacementId};

use crate::database::{Database, ElementId, OccId};
use crate::effect::{self, shadow, EffectAnalysis, FootprintSummary, TouchedSet};
use crate::value::Value;

/// Where a newly inserted element (or a new occurrence of an existing one)
/// goes in one color's forest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPosition {
    /// The color receiving the occurrence.
    pub color: ColorId,
    /// The schema placement instantiated by the occurrence.
    pub placement: PlacementId,
    /// Parent occurrence in that color's tree (pre-batch id); `None` for
    /// roots of the color's forest.
    pub parent: Option<OccId>,
}

/// One link-table entry recorded alongside an inserted relationship
/// element: the participant instance on `edge` that the new relationship
/// instance references.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchLink {
    /// The ER edge being linked (its `rel` must be the inserted node).
    pub edge: EdgeId,
    /// Ordinal of the participant instance on the edge's participant node.
    pub participant_ordinal: u32,
}

/// One logical operation inside an [`UpdateBatch`].
#[derive(Debug, Clone, PartialEq)]
pub enum BatchOp {
    /// Overwrite one attribute of a logical instance. Applies to the
    /// canonical element and every physical copy (duplicate maintenance),
    /// whichever of them `element` names.
    WriteAttr {
        /// Canonical element or any copy of the instance to write.
        element: ElementId,
        /// Attribute index within the element.
        attr: usize,
        /// The new value.
        value: Value,
    },
    /// Delete a logical instance everywhere: every occurrence of its
    /// canonical element and of every copy leaves every color, and the
    /// extent / value-index / statistics contributions retract.
    Delete {
        /// Canonical element or any copy of the doomed instance.
        element: ElementId,
    },
    /// Insert a new canonical element with occurrences at the given
    /// positions (the first position binds the canonical element, later
    /// positions bind fresh physical copies, mirroring the materializer)
    /// and link-table entries for its relationship edges.
    Insert {
        /// The ER node type of the new instance.
        node: NodeId,
        /// Full stored attribute vector: declared attributes followed by
        /// one idref slot per idref edge on this node, in schema order.
        attrs: Vec<Value>,
        /// Occurrence positions; must cover every color whose forest
        /// places `node` (the coverage half of the ICIC obligations).
        positions: Vec<BatchPosition>,
        /// Link-table entries (for relationship nodes).
        links: Vec<BatchLink>,
    },
    /// Add one more occurrence of an existing instance (a physical copy if
    /// the canonical element is already placed somewhere).
    AddOccurrence {
        /// Canonical element or any copy of the instance.
        element: ElementId,
        /// Where the new occurrence goes.
        position: BatchPosition,
    },
    /// Remove specific occurrences (pre-batch ids) from one color;
    /// descendants are removed transitively.
    RemoveOccurrences {
        /// The color to edit.
        color: ColorId,
        /// Pre-batch occurrence ids to remove.
        occs: Vec<OccId>,
    },
}

/// Why a batch was rejected. Validation runs before any mutation, so a
/// rejected batch leaves the database untouched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchError {
    /// An op referenced an element id outside the store.
    UnknownElement(ElementId),
    /// An op referenced an instance that was already deleted.
    Deleted(ElementId),
    /// An attribute index out of range for the element.
    BadAttr {
        /// The element written.
        element: ElementId,
        /// The out-of-range attribute index.
        attr: usize,
    },
    /// An insert's attribute vector does not match the node's stored arity
    /// (declared attributes plus idref slots).
    Arity {
        /// The inserted node type.
        node: NodeId,
        /// The arity the schema requires.
        expected: usize,
        /// The arity the op supplied.
        got: usize,
    },
    /// An insert misses a color whose forest places the node — applying it
    /// would leave the inter-color constraints half-satisfied.
    IcicIncomplete {
        /// The inserted node type.
        node: NodeId,
        /// The color with no position.
        color: ColorId,
    },
    /// A position's placement/color/parent combination is inconsistent
    /// with the schema.
    BadPosition(String),
    /// A `RemoveOccurrences` op referenced an occurrence outside the
    /// color's tree.
    UnknownOccurrence {
        /// The color edited.
        color: ColorId,
        /// The out-of-range occurrence id.
        occ: OccId,
    },
    /// An insert's link entry is inconsistent (wrong edge, or a
    /// participant ordinal that resolves to no live instance).
    BadLink(String),
    /// Two ops in the batch contend for the same target (double write of
    /// one attribute, delete of a written instance, …).
    Conflict(String),
    /// The paged storage backend failed to commit the batch's dirty
    /// segments (an I/O error). Raised *before* the commit point, so the
    /// live database and its backend state are untouched.
    Storage(String),
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchError::UnknownElement(e) => write!(f, "unknown element {e}"),
            BatchError::Deleted(e) => write!(f, "element {e} is deleted"),
            BatchError::BadAttr { element, attr } => {
                write!(f, "attribute {attr} out of range for element {element}")
            }
            BatchError::Arity { node, expected, got } => {
                write!(f, "node {} expects arity {expected}, got {got}", node.0)
            }
            BatchError::IcicIncomplete { node, color } => {
                write!(f, "insert of node {} misses color {}", node.0, color.0)
            }
            BatchError::BadPosition(msg) => write!(f, "bad position: {msg}"),
            BatchError::UnknownOccurrence { color, occ } => {
                write!(f, "unknown occurrence {occ:?} in color {}", color.0)
            }
            BatchError::BadLink(msg) => write!(f, "bad link: {msg}"),
            BatchError::Conflict(msg) => write!(f, "conflicting ops: {msg}"),
            BatchError::Storage(msg) => write!(f, "storage backend commit failed: {msg}"),
        }
    }
}

impl std::error::Error for BatchError {}

/// What a committed batch did, for callers and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchReceipt {
    /// Number of ops applied.
    pub ops: usize,
    /// Canonical element ids created by `Insert` ops, in op order.
    pub inserted: Vec<ElementId>,
    /// Physical duplicate writes performed by attribute fan-out (one per
    /// copy written beyond the canonical element).
    pub duplicate_writes: u64,
    /// Occurrences removed by deletes and occurrence edits (subtrees
    /// included).
    pub occurrences_removed: u64,
    /// The database epoch after the commit.
    pub epoch: u64,
    /// Pages written by the paged storage backend's commit transaction
    /// (0 on the heap backend, and for batches that dirtied nothing).
    pub pages_written: u64,
    /// Key counts per derived structure from the batch's static effect
    /// footprint (computed by [`crate::effect::analyze_batch`] before the
    /// commit; deterministic for a given batch and pre-state).
    pub footprint: FootprintSummary,
}

/// A validated-then-atomic collection of update operations.
///
/// ```text
/// let mut batch = UpdateBatch::new();
/// batch.write_attr(e, 0, Value::Int(7));
/// batch.delete(stale);
/// let receipt = batch.apply(&mut db, &graph)?;
/// ```
#[derive(Debug, Clone, Default)]
pub struct UpdateBatch {
    ops: Vec<BatchOp>,
}

impl UpdateBatch {
    /// An empty batch.
    pub fn new() -> Self {
        UpdateBatch::default()
    }

    /// Number of queued ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the batch holds no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The queued ops, in application order.
    pub fn ops(&self) -> &[BatchOp] {
        &self.ops
    }

    /// Queue an arbitrary op.
    pub fn push(&mut self, op: BatchOp) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// Queue an attribute write (canonical + all copies).
    pub fn write_attr(&mut self, element: ElementId, attr: usize, value: Value) -> &mut Self {
        self.push(BatchOp::WriteAttr { element, attr, value })
    }

    /// Queue an instance delete.
    pub fn delete(&mut self, element: ElementId) -> &mut Self {
        self.push(BatchOp::Delete { element })
    }

    /// Queue an element insert.
    pub fn insert(
        &mut self,
        node: NodeId,
        attrs: Vec<Value>,
        positions: Vec<BatchPosition>,
        links: Vec<BatchLink>,
    ) -> &mut Self {
        self.push(BatchOp::Insert { node, attrs, positions, links })
    }

    /// Validate every op against `db` without mutating anything.
    pub fn validate(&self, db: &Database, graph: &ErGraph) -> Result<(), BatchError> {
        let schema = &db.schema;
        // canonical instances doomed by Delete ops, for conflict checks
        let mut doomed: HashSet<ElementId> = HashSet::new();
        for op in &self.ops {
            if let BatchOp::Delete { element } = op {
                let canon = self.resolve_live(db, *element)?;
                if !doomed.insert(canon) {
                    return Err(BatchError::Conflict(format!("instance {canon} deleted twice")));
                }
            }
        }
        let mut written: HashSet<(ElementId, usize)> = HashSet::new();
        for op in &self.ops {
            match op {
                BatchOp::Delete { .. } => {}
                BatchOp::WriteAttr { element, attr, .. } => {
                    let canon = self.resolve_live(db, *element)?;
                    if db.element(canon).attrs.len() <= *attr {
                        return Err(BatchError::BadAttr { element: canon, attr: *attr });
                    }
                    if doomed.contains(&canon) {
                        return Err(BatchError::Conflict(format!(
                            "instance {canon} both written and deleted"
                        )));
                    }
                    if !written.insert((canon, *attr)) {
                        return Err(BatchError::Conflict(format!(
                            "attribute {attr} of {canon} written twice"
                        )));
                    }
                }
                BatchOp::Insert { node, attrs, positions, links } => {
                    let expected = graph.node(*node).attributes.len()
                        + schema
                            .idrefs()
                            .iter()
                            .filter(|x| graph.edge(x.edge).rel == *node)
                            .count();
                    if attrs.len() != expected {
                        return Err(BatchError::Arity { node: *node, expected, got: attrs.len() });
                    }
                    for c in schema.colors() {
                        if !schema.placements_of_in_color(*node, c).is_empty()
                            && !positions.iter().any(|p| p.color == c)
                        {
                            return Err(BatchError::IcicIncomplete { node: *node, color: c });
                        }
                    }
                    for p in positions {
                        self.check_position(db, &doomed, *node, p)?;
                    }
                    for l in links {
                        let edge = graph.edge(l.edge);
                        if edge.rel != *node {
                            return Err(BatchError::BadLink(format!(
                                "edge {:?} is not a relationship edge of node {}",
                                l.edge, node.0
                            )));
                        }
                        let target = db
                            .canonical_by_ordinal(edge.participant, l.participant_ordinal)
                            .ok_or_else(|| {
                                BatchError::BadLink(format!(
                                    "participant ordinal {} of node {} resolves to no live \
                                     instance",
                                    l.participant_ordinal, edge.participant.0
                                ))
                            })?;
                        if doomed.contains(&target) {
                            return Err(BatchError::Conflict(format!(
                                "insert links to instance {target} deleted in the same batch"
                            )));
                        }
                    }
                }
                BatchOp::AddOccurrence { element, position } => {
                    let canon = self.resolve_live(db, *element)?;
                    if doomed.contains(&canon) {
                        return Err(BatchError::Conflict(format!(
                            "occurrence added for instance {canon} deleted in the same batch"
                        )));
                    }
                    self.check_position(db, &doomed, db.element(canon).node, position)?;
                }
                BatchOp::RemoveOccurrences { color, occs } => {
                    if color.idx() >= db.color_count() {
                        return Err(BatchError::BadPosition(format!(
                            "color {} out of range",
                            color.0
                        )));
                    }
                    let len = db.color(*color).occs().len();
                    for &o in occs {
                        if o.idx() >= len {
                            return Err(BatchError::UnknownOccurrence { color: *color, occ: o });
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Validate, then apply atomically. On `Ok` the database has advanced
    /// by the whole batch (and its epoch has moved); on `Err` it is
    /// byte-identical to before the call. Readers holding a [`Snapshot`]
    /// taken earlier keep the pre-batch state either way.
    ///
    /// [`Snapshot`]: crate::database::Snapshot
    pub fn apply(&self, db: &mut Database, graph: &ErGraph) -> Result<BatchReceipt, BatchError> {
        let (receipt, analysis, touched) = self.apply_inner(db, graph, cfg!(debug_assertions))?;
        if let Some(touched) = touched {
            // B002 — footprint soundness, asserted on every debug-build
            // commit: what the shadow tracker saw the mutators touch must
            // be contained in the static footprint
            if let Err(msg) = analysis.footprint.covers(&touched) {
                debug_assert!(false, "{msg}");
            }
        }
        Ok(receipt)
    }

    /// [`UpdateBatch::apply`] with the B002 instrumentation forced on in
    /// **any** build: the shadow tracker records every key the commit's
    /// mutators actually touch, and the caller receives the effect
    /// analysis and the touched set to check
    /// [`Footprint::covers`](crate::effect::Footprint::covers) itself —
    /// the oracle's `--independence-seeds` sweep runs this in release.
    pub fn apply_verified(
        &self,
        db: &mut Database,
        graph: &ErGraph,
    ) -> Result<(BatchReceipt, EffectAnalysis, TouchedSet), BatchError> {
        let (receipt, analysis, touched) = self.apply_inner(db, graph, true)?;
        Ok((receipt, analysis, touched.unwrap_or_default()))
    }

    fn apply_inner(
        &self,
        db: &mut Database,
        graph: &ErGraph,
        track: bool,
    ) -> Result<(BatchReceipt, EffectAnalysis, Option<TouchedSet>), BatchError> {
        let mut span = colorist_trace::span("batch", "apply");
        span.counter("batch_ops", self.ops.len() as u64);
        self.validate(db, graph)?;

        // static effect analysis against the pre-batch state — always
        // computed, so the receipt's footprint summary is deterministic
        let analysis = {
            let mut espan = colorist_trace::span("effect", "analyze");
            let analysis = effect::analyze_batch(self, db, graph);
            espan.counter("effect_keys", analysis.footprint.summary().effect_keys());
            analysis
        };
        if track {
            shadow::start();
        }

        // all mutations land on the staged clone; the live database only
        // advances when the whole batch has gone through (the clone is
        // cheap: every bulk structure is behind an Arc)
        let mut staged = db.clone();
        let mut receipt = BatchReceipt {
            ops: self.ops.len(),
            inserted: Vec::new(),
            duplicate_writes: 0,
            occurrences_removed: 0,
            epoch: 0,
            pages_written: 0,
            footprint: analysis.footprint.summary(),
        };

        // copies per canonical element, for duplicate maintenance
        let mut copies: HashMap<ElementId, Vec<ElementId>> = HashMap::new();
        for (i, el) in staged.elements().iter().enumerate() {
            let id = ElementId(i as u32);
            if el.canonical != id {
                copies.entry(el.canonical).or_default().push(id);
            }
        }

        let mut touched_colors: HashSet<ColorId> = HashSet::new();

        // 1. attribute writes (fan out to copies)
        for op in &self.ops {
            if let BatchOp::WriteAttr { element, attr, value } = op {
                let canon = staged.element(*element).canonical;
                staged.write_attr(canon, *attr, value.clone());
                for &c in copies.get(&canon).map(Vec::as_slice).unwrap_or(&[]) {
                    staged.write_attr(c, *attr, value.clone());
                    receipt.duplicate_writes += 1;
                }
            }
        }

        // 2. inserts, then extra occurrences — both only append to the
        // color trees, so pre-batch occurrence ids stay valid throughout
        for op in &self.ops {
            match op {
                BatchOp::Insert { node, attrs, positions, links } => {
                    let id = staged.insert_element(*node, attrs.clone());
                    receipt.inserted.push(id);
                    let ordinal = staged.element(id).ordinal;
                    for l in links {
                        staged.push_link(l.edge, ordinal, l.participant_ordinal);
                    }
                    for (i, p) in positions.iter().enumerate() {
                        // first occurrence binds the canonical element,
                        // later ones bind fresh copies (materializer rule)
                        let el = if i == 0 { id } else { staged.insert_copy(id) };
                        staged.push_occurrence(p.color, el, p.placement, p.parent);
                        touched_colors.insert(p.color);
                    }
                }
                BatchOp::AddOccurrence { element, position } => {
                    let canon = staged.element(*element).canonical;
                    let placed = (0..staged.color_count()).any(|c| {
                        let c = ColorId(c as u16);
                        staged.color(c).occs().iter().any(|o| o.element == canon)
                    });
                    let el = if placed { staged.insert_copy(canon) } else { canon };
                    staged.push_occurrence(position.color, el, position.placement, position.parent);
                    touched_colors.insert(position.color);
                }
                _ => {}
            }
        }

        // 3. explicit occurrence removals (pre-batch ids; still valid)
        for op in &self.ops {
            if let BatchOp::RemoveOccurrences { color, occs } = op {
                receipt.occurrences_removed += staged.remove_occurrences(*color, occs) as u64;
                touched_colors.insert(*color);
            }
        }

        // 4. one relabel per structurally edited color
        let mut touched: Vec<ColorId> = touched_colors.into_iter().collect();
        touched.sort_unstable_by_key(|c| c.0);
        for c in touched {
            staged.relabel_color(c);
        }

        // 5. deletes last (they relabel the colors they empty themselves)
        for op in &self.ops {
            if let BatchOp::Delete { element } = op {
                staged.kill_links_of(graph, *element);
                receipt.occurrences_removed += staged.remove_element_occurrences(*element) as u64;
            }
        }

        let touched = track.then(shadow::stop);
        debug_assert_eq!(staged.check_integrity(), Ok(()));
        receipt.epoch = staged.epoch();
        // write the batch's dirty segments through the paged backend as one
        // transaction *before* publishing the staged state, so a storage
        // failure leaves the live database (and its backend) untouched
        let flush = staged.flush_storage().map_err(|e| BatchError::Storage(e.to_string()))?;
        receipt.pages_written = flush.pages_written;
        if flush.pages_written > 0 {
            let mut sspan = colorist_trace::span("storage", "flush:batch");
            sspan.counter("page_writes", flush.pages_written);
        }
        // the commit point: readers that cloned the Arcs earlier keep the
        // pre-batch version, everyone after sees the whole batch
        *db = staged;
        Ok((receipt, analysis, touched))
    }

    /// Resolve `e` to its live canonical instance.
    fn resolve_live(&self, db: &Database, e: ElementId) -> Result<ElementId, BatchError> {
        if e.idx() >= db.element_count() {
            return Err(BatchError::UnknownElement(e));
        }
        let canon = db.element(e).canonical;
        if !db.is_live(canon) {
            return Err(BatchError::Deleted(canon));
        }
        Ok(canon)
    }

    /// Placement/color/parent consistency for one position.
    fn check_position(
        &self,
        db: &Database,
        doomed: &HashSet<ElementId>,
        node: NodeId,
        p: &BatchPosition,
    ) -> Result<(), BatchError> {
        let schema = &db.schema;
        if p.placement.idx() >= schema.placements().len() {
            return Err(BatchError::BadPosition(format!("placement {} unknown", p.placement)));
        }
        let pl = schema.placement(p.placement);
        if pl.node != node {
            return Err(BatchError::BadPosition(format!(
                "placement {} is of node {}, not {}",
                p.placement, pl.node.0, node.0
            )));
        }
        if pl.color != p.color {
            return Err(BatchError::BadPosition(format!(
                "placement {} belongs to color {}, not {}",
                p.placement, pl.color.0, p.color.0
            )));
        }
        match (pl.parent, p.parent) {
            (None, None) => Ok(()),
            (None, Some(_)) => Err(BatchError::BadPosition(format!(
                "placement {} is a root but a parent occurrence was given",
                p.placement
            ))),
            (Some(_), None) => Err(BatchError::BadPosition(format!(
                "placement {} requires a parent occurrence",
                p.placement
            ))),
            (Some((pp, _)), Some(occ)) => {
                if occ.idx() >= db.color(p.color).occs().len() {
                    return Err(BatchError::UnknownOccurrence { color: p.color, occ });
                }
                let parent = db.color(p.color).occ(occ);
                if parent.placement != pp {
                    return Err(BatchError::BadPosition(format!(
                        "parent occurrence sits at {}, placement {} requires parent {}",
                        parent.placement, p.placement, pp
                    )));
                }
                let parent_canon = db.element(parent.element).canonical;
                if doomed.contains(&parent_canon) {
                    return Err(BatchError::Conflict(format!(
                        "parent instance {parent_canon} is deleted in the same batch"
                    )));
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::DatabaseBuilder;
    use colorist_er::{Attribute, ErDiagram};
    use colorist_mct::ColorId;

    fn tiny() -> (ErGraph, crate::database::Database) {
        let mut d = ErDiagram::new("t");
        d.add_entity("a", vec![Attribute::key("id")]).unwrap();
        d.add_entity("b", vec![Attribute::key("id"), Attribute::text("x")]).unwrap();
        d.add_rel_1m("r", "a", "b").unwrap();
        let g = ErGraph::from_diagram(&d).unwrap();
        let s = colorist_core::design(&g, colorist_core::Strategy::En).unwrap();
        let a = g.node_by_name("a").unwrap();
        let b = g.node_by_name("b").unwrap();
        let r = g.node_by_name("r").unwrap();
        let c = ColorId(0);
        let pa = s.placements_of_in_color(a, c)[0];
        let pr = s.placements_of_in_color(r, c)[0];
        let pb = s.placements_of_in_color(b, c)[0];
        let mut bd = DatabaseBuilder::new(s.clone(), g.node_count());
        let ea0 = bd.add_canonical(a, vec![Value::Int(0)]);
        let _ea1 = bd.add_canonical(a, vec![Value::Int(1)]);
        let er0 = bd.add_canonical(r, vec![]);
        let er1 = bd.add_canonical(r, vec![]);
        let eb0 = bd.add_canonical(b, vec![Value::Int(0), Value::Text("u".into())]);
        let eb1 = bd.add_canonical(b, vec![Value::Int(1), Value::Text("v".into())]);
        let oa0 = bd.add_occurrence(c, ea0, pa, None);
        let _oa1 = bd.add_occurrence(c, _ea1, pa, None);
        let or0 = bd.add_occurrence(c, er0, pr, Some(oa0));
        let or1 = bd.add_occurrence(c, er1, pr, Some(oa0));
        bd.add_occurrence(c, eb0, pb, Some(or0));
        bd.add_occurrence(c, eb1, pb, Some(or1));
        (g, bd.finish())
    }

    #[test]
    fn batch_commits_atomically_and_reports() {
        let (g, mut db) = tiny();
        let b = g.node_by_name("b").unwrap();
        let eb0 = db.extent(b)[0];
        let eb1 = db.extent(b)[1];
        let mut batch = UpdateBatch::new();
        batch.write_attr(eb0, 1, Value::Text("patched".into()));
        batch.delete(eb1);
        let epoch0 = db.epoch();
        let receipt = batch.apply(&mut db, &g).expect("valid batch");
        assert_eq!(receipt.ops, 2);
        assert_eq!(receipt.occurrences_removed, 1);
        assert_eq!(receipt.epoch, db.epoch());
        assert!(db.epoch() > epoch0);
        assert_eq!(db.element(eb0).attrs[1], Value::Text("patched".into()));
        assert!(!db.is_live(eb1));
        assert_eq!(db.extent(b).len(), 1);
        assert_eq!(db.check_integrity(), Ok(()));
    }

    #[test]
    fn rejected_batch_mutates_nothing() {
        let (g, mut db) = tiny();
        let b = g.node_by_name("b").unwrap();
        let eb0 = db.extent(b)[0];
        let before = db.clone();
        let cases: Vec<(UpdateBatch, BatchError)> = vec![
            (
                {
                    let mut x = UpdateBatch::new();
                    x.write_attr(eb0, 1, Value::Int(1)).write_attr(eb0, 1, Value::Int(2));
                    x.clone()
                },
                BatchError::Conflict(format!("attribute 1 of {eb0} written twice")),
            ),
            (
                {
                    let mut x = UpdateBatch::new();
                    x.write_attr(eb0, 1, Value::Int(1)).delete(eb0);
                    x.clone()
                },
                BatchError::Conflict(format!("instance {eb0} both written and deleted")),
            ),
            (
                {
                    let mut x = UpdateBatch::new();
                    x.delete(ElementId(999));
                    x.clone()
                },
                BatchError::UnknownElement(ElementId(999)),
            ),
            (
                {
                    let mut x = UpdateBatch::new();
                    x.write_attr(eb0, 7, Value::Int(1));
                    x.clone()
                },
                BatchError::BadAttr { element: eb0, attr: 7 },
            ),
        ];
        for (batch, want) in cases {
            let got = batch.apply(&mut db, &g).expect_err("must reject");
            assert_eq!(got, want);
            assert_eq!(db.epoch(), before.epoch(), "rejection must not move the epoch");
            assert_eq!(db.extent(b), before.extent(b));
        }
    }

    #[test]
    fn insert_validates_arity_coverage_and_positions() {
        let (g, mut db) = tiny();
        let b = g.node_by_name("b").unwrap();
        let c = ColorId(0);
        let pb = db.schema.placements_of_in_color(b, c)[0];
        // wrong arity
        let mut batch = UpdateBatch::new();
        batch.insert(b, vec![Value::Int(9)], vec![], vec![]);
        assert_eq!(
            batch.apply(&mut db, &g),
            Err(BatchError::Arity { node: b, expected: 2, got: 1 })
        );
        // no position for the only color
        let mut batch = UpdateBatch::new();
        batch.insert(b, vec![Value::Int(9), Value::Text("w".into())], vec![], vec![]);
        assert_eq!(batch.apply(&mut db, &g), Err(BatchError::IcicIncomplete { node: b, color: c }));
        // a non-root placement needs a parent occurrence
        let mut batch = UpdateBatch::new();
        batch.insert(
            b,
            vec![Value::Int(9), Value::Text("w".into())],
            vec![BatchPosition { color: c, placement: pb, parent: None }],
            vec![],
        );
        assert!(matches!(batch.apply(&mut db, &g), Err(BatchError::BadPosition(_))));
        // and with a correct parent the insert lands everywhere
        let r = g.node_by_name("r").unwrap();
        let pr = db.schema.placements_of_in_color(r, c)[0];
        let parent = db.color(c).of_placement(pr)[0];
        let mut batch = UpdateBatch::new();
        batch.insert(
            b,
            vec![Value::Int(9), Value::Text("w".into())],
            vec![BatchPosition { color: c, placement: pb, parent: Some(parent) }],
            vec![],
        );
        let receipt = batch.apply(&mut db, &g).expect("valid insert");
        let id = receipt.inserted[0];
        assert!(db.is_live(id));
        assert_eq!(db.extent(b).len(), 3);
        assert_eq!(db.occurrences_of_logical(c, id).len(), 1);
        assert_eq!(db.check_integrity(), Ok(()));
    }

    #[test]
    fn writes_fan_out_to_copies() {
        let (g, mut db) = tiny();
        let b = g.node_by_name("b").unwrap();
        let r = g.node_by_name("r").unwrap();
        let c = ColorId(0);
        let eb0 = db.extent(b)[0];
        let copy = db.insert_copy(eb0);
        let pb = db.schema.placements_of_in_color(b, c)[0];
        let parent = db.color(c).of_placement(db.schema.placements_of_in_color(r, c)[0])[1];
        db.push_occurrence(c, copy, pb, Some(parent));
        db.relabel_color(c);
        let mut batch = UpdateBatch::new();
        batch.write_attr(copy, 1, Value::Text("both".into()));
        let receipt = batch.apply(&mut db, &g).expect("valid batch");
        assert_eq!(receipt.duplicate_writes, 1);
        assert_eq!(db.element(eb0).attrs[1], Value::Text("both".into()));
        assert_eq!(db.element(copy).attrs[1], Value::Text("both".into()));
        assert_eq!(db.check_integrity(), Ok(()));
    }

    #[test]
    fn snapshot_survives_a_commit() {
        let (g, mut db) = tiny();
        let b = g.node_by_name("b").unwrap();
        let eb1 = db.extent(b)[1];
        let snap = db.snapshot();
        let mut batch = UpdateBatch::new();
        batch.delete(eb1);
        batch.apply(&mut db, &g).expect("valid batch");
        assert_eq!(snap.extent(b).len(), 2, "snapshot must keep the pre-batch extent");
        assert!(snap.is_live(eb1));
        assert!(!db.is_live(eb1));
    }
}

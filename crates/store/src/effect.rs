//! Static batch effect analysis (DESIGN.md §13): footprints,
//! commutativity certificates, and the independence-scheduled group
//! commit.
//!
//! [`analyze_batch`] is an abstract interpretation of an
//! [`UpdateBatch`] program against the pre-batch [`Database`]: without
//! executing anything it computes the batch's [`Footprint`] — every
//! `(element, attr)` write cell, every deleted logical instance, and
//! every derived structure the commit will touch (extent slots,
//! ordinal-index entries, value-index postings, statistics columns,
//! color label surfaces, link-table cells). The phase order of
//! `UpdateBatch::apply` is fixed (writes → inserts/occurrence appends →
//! occurrence removals → relabels → deletes), so the element ids and
//! ordinals of *future* inserts are statically predictable and the
//! footprint can name them exactly.
//!
//! The analysis carries a diagnostic family of its own, continuing the
//! repo's P/S code convention:
//!
//! * **B001** — intra-batch conflict localization: the op *indices* and
//!   the precise [`EffectKey`] two ops contend on (the refined form of
//!   `BatchError::Conflict`).
//! * **B002** — footprint soundness: a shadow tracker instruments the
//!   `Arc::make_mut` mutators in `database.rs` and records every key a
//!   commit actually touches; [`Footprint::covers`] asserts the touched
//!   set is contained in the static footprint. `UpdateBatch::apply`
//!   runs the check automatically under `cfg(debug_assertions)`;
//!   `UpdateBatch::apply_verified` runs it in any build (the oracle's
//!   `--independence-seeds` sweep uses it in release).
//! * **B003** — pairwise commutativity: [`certify`] proves two batches
//!   with disjoint footprints commit in either order with identical
//!   final state — *including* identical statistics and epoch — or
//!   names a witnessing overlap key.
//! * **B004** — snapshot-epoch safety: [`Footprint::invalidates`]
//!   proves a batch cannot change the answers of any plan whose
//!   [`ReadFootprint`] (computed by the query layer from the verifier's
//!   per-register lattice) is disjoint from the batch's write surface.
//!
//! On top sits the first consumer, [`CommitScheduler`]: stage several
//! batches, partition them into independence classes via the pairwise
//! certificates, and group-commit each class under **one** epoch bump —
//! the static-analysis foundation for multi-writer scaling (ROADMAP
//! item 2). Pairwise independence extends to classes because every
//! cross-batch interaction that could widen a batch's footprint mid-run
//! (an added copy fanning out another batch's write, a new link killed
//! by another batch's delete, an occurrence added to a color another
//! batch relabels) is itself a certified conflict, so it keeps the
//! interacting batches inside one class.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

use colorist_er::{EdgeId, ErGraph, NodeId};
use colorist_mct::ColorId;

use crate::batch::{BatchError, BatchOp, BatchReceipt, UpdateBatch};
use crate::database::{Database, ElementId};
use crate::value::Value;

/// One key in a batch's effect surface — the unit both the static
/// footprint and the shadow tracker speak, and the witness type named
/// by conflict certificates (B001/B003) and snapshot-safety refutations
/// (B004).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum EffectKey {
    /// An `(element, attr)` attribute write cell (canonical or copy).
    Write(ElementId, usize),
    /// A logical instance (named by its canonical element) that a batch
    /// deletes, writes, or structurally extends.
    Instance(ElementId),
    /// A node's extent (membership changes: insert or delete).
    Extent(NodeId),
    /// An ordinal-index slot `(node, ordinal)` — tombstoned by deletes,
    /// appended by inserts.
    Ordinal(NodeId, u32),
    /// A value-index posting `(node, attr, element)`.
    Posting(NodeId, usize, ElementId),
    /// A statistics column `(node, attr)` — refreshed whenever the
    /// column's stored content changes.
    Column(NodeId, usize),
    /// A color's whole label surface: any structural edit relabels the
    /// color and remaps every `OccId` in it.
    Color(ColorId),
    /// A link-table cell `(edge, relationship ordinal)`.
    Link(EdgeId, u32),
    /// The element-id allocator (two allocating batches assign ids in
    /// commit order).
    Alloc,
    /// The text symbol table (two batches interning new symbols assign
    /// them in commit order).
    Intern,
}

impl fmt::Display for EffectKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EffectKey::Write(e, a) => write!(f, "write cell {e}.attr{a}"),
            EffectKey::Instance(e) => write!(f, "instance {e}"),
            EffectKey::Extent(n) => write!(f, "extent of node {}", n.0),
            EffectKey::Ordinal(n, o) => write!(f, "ordinal slot ({}, {o})", n.0),
            EffectKey::Posting(n, a, e) => write!(f, "posting (node {}, attr {a}, {e})", n.0),
            EffectKey::Column(n, a) => write!(f, "statistics column (node {}, attr {a})", n.0),
            EffectKey::Color(c) => write!(f, "color {}", c.0),
            EffectKey::Link(e, o) => write!(f, "link cell ({e}, rel ordinal {o})"),
            EffectKey::Alloc => write!(f, "element-id allocator"),
            EffectKey::Intern => write!(f, "text symbol table"),
        }
    }
}

/// The static effect footprint of one batch against one pre-batch
/// database: every key [`UpdateBatch::apply`] may touch. Sound by
/// construction (B002 audits it against executions) and precise enough
/// to certify commutativity (B003) cell-by-cell.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Footprint {
    /// `(element, attr)` write cells, canonical **and** every physical
    /// copy (attribute writes fan out).
    pub writes: BTreeSet<(ElementId, usize)>,
    /// Canonical elements of instances whose attributes are written.
    pub written_instances: BTreeSet<ElementId>,
    /// Canonical elements of instances the batch deletes.
    pub deleted: BTreeSet<ElementId>,
    /// Canonical elements (pre-existing or predicted inserts) gaining
    /// occurrences.
    pub occ_added: BTreeSet<ElementId>,
    /// Canonical participant instances referenced by insert links.
    pub link_targets: BTreeSet<ElementId>,
    /// Nodes whose extent membership changes (inserts/deletes).
    pub extent_nodes: BTreeSet<NodeId>,
    /// Ordinal-index slots tombstoned or appended.
    pub ordinals: BTreeSet<(NodeId, u32)>,
    /// Value-index postings inserted, moved, or retracted.
    pub postings: BTreeSet<(NodeId, usize, ElementId)>,
    /// Statistics columns refreshed (their stored content changes).
    pub stat_columns: BTreeSet<(NodeId, usize)>,
    /// Nodes whose statistics row (extent cardinality) changes.
    pub stat_nodes: BTreeSet<NodeId>,
    /// Colors structurally edited — the whole color's label surface,
    /// since any edit relabels and remaps every `OccId`.
    pub colors: BTreeSet<ColorId>,
    /// Link-table cells pushed or killed.
    pub links: BTreeSet<(EdgeId, u32)>,
    /// Element ids the batch will allocate (inserts and copies),
    /// predicted from the fixed phase order.
    pub allocated: BTreeSet<ElementId>,
    /// Text values the batch interns that the pre-batch symbol table
    /// does not hold, in first-intern order.
    pub new_symbols: Vec<String>,
    /// Whether the batch relabels anything (and therefore recomputes
    /// the per-placement occurrence summaries). Deterministic from the
    /// final trees, so never a conflict by itself.
    pub placement_stats: bool,
}

/// Key counts per derived structure — the receipt-level digest of a
/// [`Footprint`], deterministic for a given batch and pre-state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FootprintSummary {
    /// `(element, attr)` write cells (copies included).
    pub write_cells: u64,
    /// Deleted logical instances.
    pub deleted_instances: u64,
    /// Nodes whose extent membership changes.
    pub extent_nodes: u64,
    /// Ordinal-index slots touched.
    pub ordinal_slots: u64,
    /// Value-index postings touched.
    pub postings: u64,
    /// Statistics columns refreshed.
    pub statistics_columns: u64,
    /// Colors relabelled.
    pub colors: u64,
    /// Link-table cells touched.
    pub link_cells: u64,
}

impl FootprintSummary {
    /// Total effect keys across every derived structure — the
    /// deterministic counter threaded through the `effect` trace span.
    pub fn effect_keys(&self) -> u64 {
        self.write_cells
            + self.deleted_instances
            + self.extent_nodes
            + self.ordinal_slots
            + self.postings
            + self.statistics_columns
            + self.colors
            + self.link_cells
    }
}

impl fmt::Display for FootprintSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} effect keys ({} writes, {} deletes, {} extents, {} ordinals, {} postings, \
             {} stat columns, {} colors, {} links)",
            self.effect_keys(),
            self.write_cells,
            self.deleted_instances,
            self.extent_nodes,
            self.ordinal_slots,
            self.postings,
            self.statistics_columns,
            self.colors,
            self.link_cells
        )
    }
}

impl Footprint {
    /// The receipt-level digest.
    pub fn summary(&self) -> FootprintSummary {
        FootprintSummary {
            write_cells: self.writes.len() as u64,
            deleted_instances: self.deleted.len() as u64,
            extent_nodes: self.extent_nodes.len() as u64,
            ordinal_slots: self.ordinals.len() as u64,
            postings: self.postings.len() as u64,
            statistics_columns: self.stat_columns.len() as u64,
            colors: self.colors.len() as u64,
            link_cells: self.links.len() as u64,
        }
    }

    /// Whether the footprint contains an effect key.
    pub fn contains(&self, key: &EffectKey) -> bool {
        match key {
            EffectKey::Write(e, a) => self.writes.contains(&(*e, *a)),
            EffectKey::Instance(e) => {
                self.deleted.contains(e)
                    || self.written_instances.contains(e)
                    || self.occ_added.contains(e)
                    || self.link_targets.contains(e)
            }
            EffectKey::Extent(n) => self.extent_nodes.contains(n),
            EffectKey::Ordinal(n, o) => self.ordinals.contains(&(*n, *o)),
            EffectKey::Posting(n, a, e) => self.postings.contains(&(*n, *a, *e)),
            EffectKey::Column(n, a) => self.stat_columns.contains(&(*n, *a)),
            EffectKey::Color(c) => self.colors.contains(c),
            EffectKey::Link(e, o) => self.links.contains(&(*e, *o)),
            EffectKey::Alloc => !self.allocated.is_empty(),
            EffectKey::Intern => !self.new_symbols.is_empty(),
        }
    }

    /// B002 — soundness: every key an execution actually touched must
    /// be in the static footprint. Returns the first violation.
    pub fn covers(&self, touched: &TouchedSet) -> Result<(), String> {
        let fail = |key: &dyn fmt::Display| {
            Err(format!("B002: execution touched {key} outside the static footprint"))
        };
        if let Some(&(e, a)) = touched.writes.difference(&self.writes).next() {
            return fail(&EffectKey::Write(e, a));
        }
        if let Some(&e) = touched.deleted.difference(&self.deleted).next() {
            return fail(&EffectKey::Instance(e));
        }
        if let Some(&e) = touched.occ_elements.difference(&self.occ_added).next() {
            return fail(&format!("occurrence of {}", EffectKey::Instance(e)));
        }
        if let Some(&n) = touched.extent_nodes.difference(&self.extent_nodes).next() {
            return fail(&EffectKey::Extent(n));
        }
        if let Some(&(n, o)) = touched.ordinals.difference(&self.ordinals).next() {
            return fail(&EffectKey::Ordinal(n, o));
        }
        if let Some(&(n, a, e)) = touched.postings.difference(&self.postings).next() {
            return fail(&EffectKey::Posting(n, a, e));
        }
        if let Some(&(n, a)) = touched.stat_columns.difference(&self.stat_columns).next() {
            return fail(&EffectKey::Column(n, a));
        }
        if let Some(&n) = touched.stat_nodes.difference(&self.stat_nodes).next() {
            return fail(&format!("statistics row of node {}", n.0));
        }
        if let Some(&c) = touched.colors.difference(&self.colors).next() {
            return fail(&EffectKey::Color(c));
        }
        if let Some(&(e, o)) = touched.links.difference(&self.links).next() {
            return fail(&EffectKey::Link(e, o));
        }
        let predicted: BTreeSet<ElementId> = self.allocated.iter().copied().collect();
        if let Some(&e) = touched.allocated.difference(&predicted).next() {
            return fail(&format!("allocation of {e}"));
        }
        let symbols: BTreeSet<&str> = self.new_symbols.iter().map(String::as_str).collect();
        if let Some(s) = touched.new_symbols.iter().find(|s| !symbols.contains(s.as_str())) {
            return fail(&format!("new symbol {s:?}"));
        }
        if touched.placement_stats && !self.placement_stats {
            return fail(&"placement-occurrence statistics");
        }
        Ok(())
    }

    /// B004 — snapshot-epoch safety. `None` means this batch cannot
    /// change the answer of any plan with read footprint `reads`:
    /// executing the plan after the commit equals executing it on a
    /// snapshot pinned before. `Some(key)` names the overlap that
    /// refutes the certificate.
    pub fn invalidates(&self, reads: &ReadFootprint) -> Option<EffectKey> {
        if let Some(&c) = self.colors.iter().find(|c| reads.colors.contains(c)) {
            return Some(EffectKey::Color(c));
        }
        if let Some(&n) = self.extent_nodes.iter().find(|n| reads.nodes.contains(n)) {
            return Some(EffectKey::Extent(n));
        }
        if let Some(&(n, a)) = self.stat_columns.iter().find(|k| reads.attrs.contains(k)) {
            return Some(EffectKey::Column(n, a));
        }
        if let Some(&(e, o)) = self.links.iter().find(|(e, _)| reads.edges.contains(e)) {
            return Some(EffectKey::Link(e, o));
        }
        None
    }
}

/// What a query plan reads, at the granularity the write-side
/// [`Footprint`] exposes: node extents/ordinal slots, attribute
/// columns, color label surfaces, link tables. Computed by the query
/// layer (`colorist_query::plan_read_footprint`) from the verifier's
/// per-register abstract values.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReadFootprint {
    /// Nodes whose extent / ordinal index / element population is read.
    pub nodes: BTreeSet<NodeId>,
    /// `(node, attr)` columns read by predicates, idref probes, and
    /// group-bys.
    pub attrs: BTreeSet<(NodeId, usize)>,
    /// Colors navigated (scans, structural joins, crossings).
    pub colors: BTreeSet<ColorId>,
    /// ER edges whose link tables or idref columns are probed.
    pub edges: BTreeSet<EdgeId>,
}

/// The keys one execution actually touched, recorded by the shadow
/// tracker inside the `Arc::make_mut` mutators of `database.rs` (B002's
/// ground truth).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TouchedSet {
    /// Attribute cells written.
    pub writes: BTreeSet<(ElementId, usize)>,
    /// Canonical instances whose derived structures were retracted.
    pub deleted: BTreeSet<ElementId>,
    /// Canonical instances that gained occurrences.
    pub occ_elements: BTreeSet<ElementId>,
    /// Nodes whose extent vector was edited.
    pub extent_nodes: BTreeSet<NodeId>,
    /// Ordinal slots written (appends and tombstones).
    pub ordinals: BTreeSet<(NodeId, u32)>,
    /// Value-index postings inserted, moved, or removed.
    pub postings: BTreeSet<(NodeId, usize, ElementId)>,
    /// Statistics columns refreshed.
    pub stat_columns: BTreeSet<(NodeId, usize)>,
    /// Nodes whose extent-cardinality row moved.
    pub stat_nodes: BTreeSet<NodeId>,
    /// Colors structurally edited or relabelled.
    pub colors: BTreeSet<ColorId>,
    /// Link cells pushed or killed.
    pub links: BTreeSet<(EdgeId, u32)>,
    /// Element ids allocated.
    pub allocated: BTreeSet<ElementId>,
    /// Text values newly interned.
    pub new_symbols: BTreeSet<String>,
    /// Whether placement-occurrence summaries were recomputed.
    pub placement_stats: bool,
}

impl TouchedSet {
    /// Whether the execution touched an effect key — the dynamic side
    /// of the precision check on certified-conflicting pairs.
    pub fn contains(&self, key: &EffectKey) -> bool {
        match key {
            EffectKey::Write(e, a) => self.writes.contains(&(*e, *a)),
            EffectKey::Instance(e) => {
                self.deleted.contains(e)
                    || self.occ_elements.contains(e)
                    || self.writes.iter().any(|(w, _)| w == e)
            }
            EffectKey::Extent(n) => self.extent_nodes.contains(n),
            EffectKey::Ordinal(n, o) => self.ordinals.contains(&(*n, *o)),
            EffectKey::Posting(n, a, e) => self.postings.contains(&(*n, *a, *e)),
            EffectKey::Column(n, a) => self.stat_columns.contains(&(*n, *a)),
            EffectKey::Color(c) => self.colors.contains(c),
            EffectKey::Link(e, o) => self.links.contains(&(*e, *o)),
            EffectKey::Alloc => !self.allocated.is_empty(),
            EffectKey::Intern => !self.new_symbols.is_empty(),
        }
    }
}

/// The thread-local shadow tracker behind B002. Inactive (and nearly
/// free) unless a verified apply turns it on; `UpdateBatch::apply`
/// activates it automatically in debug builds, and
/// `UpdateBatch::apply_verified` in any build.
pub(crate) mod shadow {
    use super::TouchedSet;
    use crate::database::ElementId;
    use colorist_er::{EdgeId, NodeId};
    use colorist_mct::ColorId;
    use std::cell::RefCell;

    thread_local! {
        static TRACKER: RefCell<Option<TouchedSet>> = const { RefCell::new(None) };
    }

    /// Start recording on this thread (mutations outside a tracked
    /// apply are not recorded).
    pub(crate) fn start() {
        TRACKER.with(|t| *t.borrow_mut() = Some(TouchedSet::default()));
    }

    /// Stop recording and return what was touched.
    pub(crate) fn stop() -> TouchedSet {
        TRACKER.with(|t| t.borrow_mut().take()).unwrap_or_default()
    }

    fn note(f: impl FnOnce(&mut TouchedSet)) {
        TRACKER.with(|t| {
            if let Some(ts) = t.borrow_mut().as_mut() {
                f(ts);
            }
        });
    }

    pub(crate) fn write(e: ElementId, attr: usize) {
        note(|t| {
            t.writes.insert((e, attr));
        });
    }

    pub(crate) fn deleted(canon: ElementId) {
        note(|t| {
            t.deleted.insert(canon);
        });
    }

    pub(crate) fn occ_element(canon: ElementId) {
        note(|t| {
            t.occ_elements.insert(canon);
        });
    }

    pub(crate) fn extent(node: NodeId) {
        note(|t| {
            t.extent_nodes.insert(node);
        });
    }

    pub(crate) fn ordinal(node: NodeId, ordinal: u32) {
        note(|t| {
            t.ordinals.insert((node, ordinal));
        });
    }

    pub(crate) fn posting(node: NodeId, attr: usize, e: ElementId) {
        note(|t| {
            t.postings.insert((node, attr, e));
        });
    }

    pub(crate) fn stat_column(node: NodeId, attr: usize) {
        note(|t| {
            t.stat_columns.insert((node, attr));
        });
    }

    pub(crate) fn stat_node(node: NodeId) {
        note(|t| {
            t.stat_nodes.insert(node);
        });
    }

    pub(crate) fn color(c: ColorId) {
        note(|t| {
            t.colors.insert(c);
        });
    }

    pub(crate) fn link(edge: EdgeId, rel_ordinal: u32) {
        note(|t| {
            t.links.insert((edge, rel_ordinal));
        });
    }

    pub(crate) fn alloc(e: ElementId) {
        note(|t| {
            t.allocated.insert(e);
        });
    }

    pub(crate) fn new_symbol(s: &str) {
        note(|t| {
            t.new_symbols.insert(s.to_owned());
        });
    }

    pub(crate) fn placement_stats() {
        note(|t| t.placement_stats = true);
    }
}

/// One B-family diagnostic from the effect analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchDiag {
    /// Stable code (`B001`).
    pub code: &'static str,
    /// Indices (into `UpdateBatch::ops`) of the ops involved.
    pub ops: Vec<usize>,
    /// The contended key, when one can be named.
    pub key: Option<EffectKey>,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for BatchDiag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[op", self.code)?;
        for (i, op) in self.ops.iter().enumerate() {
            write!(f, "{}{op}", if i == 0 { " " } else { "," })?;
        }
        write!(f, "]: {}", self.msg)?;
        if let Some(k) = &self.key {
            write!(f, " ({k})")?;
        }
        Ok(())
    }
}

/// The result of analyzing one batch: its static footprint plus the
/// B001 intra-batch conflict diagnostics. Total — ops whose references
/// do not resolve contribute nothing (`UpdateBatch::validate` rejects
/// them before any commit).
#[derive(Debug, Clone, Default)]
pub struct EffectAnalysis {
    /// The static effect footprint.
    pub footprint: Footprint,
    /// B001 conflict localizations.
    pub diags: Vec<BatchDiag>,
}

/// Abstractly interpret `batch` against the pre-batch `db`, mirroring
/// the exact maintenance each phase of `UpdateBatch::apply` performs
/// (see the §12.2 table) without executing any of it.
pub fn analyze_batch(batch: &UpdateBatch, db: &Database, graph: &ErGraph) -> EffectAnalysis {
    let mut fp = Footprint::default();
    let mut diags = Vec::new();

    // copies per canonical, for write fan-out (same map apply builds)
    let mut copies: HashMap<ElementId, Vec<ElementId>> = HashMap::new();
    for (i, el) in db.elements().iter().enumerate() {
        let id = ElementId(i as u32);
        if el.canonical != id {
            copies.entry(el.canonical).or_default().push(id);
        }
    }
    let resolve = |e: ElementId| -> Option<ElementId> {
        (e.idx() < db.element_count()).then(|| db.element(e).canonical).filter(|&c| db.is_live(c))
    };
    let occurs_in = |canon: ElementId| -> Vec<ColorId> {
        (0..db.color_count())
            .map(|c| ColorId(c as u16))
            .filter(|&c| !db.occurrences_of_logical(c, canon).is_empty())
            .collect()
    };
    // whether the canonical element itself (not a copy) is placed in some
    // color pre-batch — the exact test apply's AddOccurrence phase makes
    // when deciding between binding the canonical and allocating a copy
    let placed_pre = |canon: ElementId| -> bool {
        (0..db.color_count()).any(|c| {
            let c = ColorId(c as u16);
            db.occurrences_of_logical(c, canon).iter().any(|&o| db.color(c).occ(o).element == canon)
        })
    };
    let record_symbol = |fp: &mut Footprint, v: &Value| {
        if let Value::Text(s) = v {
            if db.interner().get(s).is_none() && !fp.new_symbols.iter().any(|x| x == s) {
                fp.new_symbols.push(s.clone());
            }
        }
    };

    // deletes first: B001's write/delete and occurrence/delete checks
    // need the full doomed set, like validate's own first pass
    let mut doomed: BTreeMap<ElementId, usize> = BTreeMap::new();
    for (i, op) in batch.ops().iter().enumerate() {
        if let BatchOp::Delete { element } = op {
            let Some(canon) = resolve(*element) else { continue };
            if let Some(&j) = doomed.get(&canon) {
                diags.push(BatchDiag {
                    code: "B001",
                    ops: vec![j, i],
                    key: Some(EffectKey::Instance(canon)),
                    msg: format!("instance {canon} deleted twice"),
                });
                continue;
            }
            doomed.insert(canon, i);
            fp.deleted.insert(canon);
            let el = db.element(canon);
            let (node, ordinal) = (el.node, el.ordinal);
            fp.ordinals.insert((node, ordinal));
            fp.extent_nodes.insert(node);
            fp.stat_nodes.insert(node);
            for a in 0..el.attrs.len() {
                fp.postings.insert((node, a, canon));
                fp.stat_columns.insert((node, a));
            }
            fp.colors.extend(occurs_in(canon));
            // mirror kill_links_of against the pre-state link tables
            for &(e, _) in graph.incident(node) {
                let edge = graph.edge(e);
                if edge.rel == node {
                    if db.link_slot_exists(e, ordinal) {
                        fp.links.insert((e, ordinal));
                    }
                } else {
                    for ro in db.linked_rels(e, ordinal) {
                        for &(e2, _) in graph.incident(edge.rel) {
                            if graph.edge(e2).rel == edge.rel && db.link_slot_exists(e2, ro) {
                                fp.links.insert((e2, ro));
                            }
                        }
                    }
                }
            }
        }
    }

    // phase 1 — attribute writes (fan out to copies)
    let mut written: BTreeMap<(ElementId, usize), usize> = BTreeMap::new();
    for (i, op) in batch.ops().iter().enumerate() {
        if let BatchOp::WriteAttr { element, attr, value } = op {
            let Some(canon) = resolve(*element) else { continue };
            let el = db.element(canon);
            if el.attrs.len() <= *attr {
                continue;
            }
            if let Some(&j) = doomed.get(&canon) {
                diags.push(BatchDiag {
                    code: "B001",
                    ops: vec![i.min(j), i.max(j)],
                    key: Some(EffectKey::Instance(canon)),
                    msg: format!("instance {canon} both written (op {i}) and deleted (op {j})"),
                });
            }
            if let Some(&j) = written.get(&(canon, *attr)) {
                diags.push(BatchDiag {
                    code: "B001",
                    ops: vec![j, i],
                    key: Some(EffectKey::Write(canon, *attr)),
                    msg: format!("attribute {attr} of {canon} written twice"),
                });
                continue;
            }
            written.insert((canon, *attr), i);
            record_symbol(&mut fp, value);
            fp.writes.insert((canon, *attr));
            fp.written_instances.insert(canon);
            for &c in copies.get(&canon).map(Vec::as_slice).unwrap_or(&[]) {
                fp.writes.insert((c, *attr));
            }
            fp.postings.insert((el.node, *attr, canon));
            fp.stat_columns.insert((el.node, *attr));
        }
    }

    // phase 2 — inserts and occurrence appends, in op order: the fixed
    // phase order makes allocated ids and ordinals statically exact
    let mut next_id = db.element_count() as u32;
    let mut next_ordinal: BTreeMap<NodeId, u32> = BTreeMap::new();
    let mut newly_placed: BTreeSet<ElementId> = BTreeSet::new();
    for (i, op) in batch.ops().iter().enumerate() {
        match op {
            BatchOp::Insert { node, attrs, positions, links } => {
                let id = ElementId(next_id);
                next_id += 1;
                fp.allocated.insert(id);
                fp.occ_added.insert(id);
                let ordinal = {
                    let o = next_ordinal.entry(*node).or_insert_with(|| db.ordinal_count(*node));
                    let v = *o;
                    *o += 1;
                    v
                };
                fp.ordinals.insert((*node, ordinal));
                fp.extent_nodes.insert(*node);
                fp.stat_nodes.insert(*node);
                for (a, v) in attrs.iter().enumerate() {
                    record_symbol(&mut fp, v);
                    fp.postings.insert((*node, a, id));
                    fp.stat_columns.insert((*node, a));
                }
                for l in links {
                    fp.links.insert((l.edge, ordinal));
                    let edge = graph.edge(l.edge);
                    if let Some(t) =
                        db.canonical_by_ordinal(edge.participant, l.participant_ordinal)
                    {
                        fp.link_targets.insert(t);
                        if let Some(&j) = doomed.get(&t) {
                            diags.push(BatchDiag {
                                code: "B001",
                                ops: vec![i.min(j), i.max(j)],
                                key: Some(EffectKey::Instance(t)),
                                msg: format!(
                                    "insert links to instance {t} deleted in the same batch"
                                ),
                            });
                        }
                    }
                }
                for (k, p) in positions.iter().enumerate() {
                    if k > 0 {
                        fp.allocated.insert(ElementId(next_id));
                        next_id += 1;
                    }
                    fp.colors.insert(p.color);
                }
            }
            BatchOp::AddOccurrence { element, position } => {
                let Some(canon) = resolve(*element) else { continue };
                if let Some(&j) = doomed.get(&canon) {
                    diags.push(BatchDiag {
                        code: "B001",
                        ops: vec![i.min(j), i.max(j)],
                        key: Some(EffectKey::Instance(canon)),
                        msg: format!(
                            "occurrence added for instance {canon} deleted in the same batch"
                        ),
                    });
                }
                // placed = canonical occurrence pre-batch, or an earlier
                // append in this batch (removals run in a later phase)
                let placed = newly_placed.contains(&canon) || placed_pre(canon);
                if placed {
                    fp.allocated.insert(ElementId(next_id));
                    next_id += 1;
                } else {
                    newly_placed.insert(canon);
                }
                fp.occ_added.insert(canon);
                fp.colors.insert(position.color);
            }
            _ => {}
        }
    }

    // phase 3 — explicit occurrence removals
    for op in batch.ops() {
        if let BatchOp::RemoveOccurrences { color, .. } = op {
            if color.idx() < db.color_count() {
                fp.colors.insert(*color);
            }
        }
    }

    fp.placement_stats = !fp.colors.is_empty();
    EffectAnalysis { footprint: fp, diags }
}

/// B003 — a pairwise commutativity certificate over two footprints
/// computed against the **same** pre-state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Certificate {
    /// The batches may commit in either order: the final database —
    /// extents, trees, indexes, statistics, **and epoch** — is
    /// byte-identical both ways, and both orders validate.
    Independent,
    /// The batches contend; `witness` names an overlapping key.
    Conflicting {
        /// A key both footprints contain.
        witness: EffectKey,
        /// Why the overlap orders the batches.
        detail: String,
    },
}

impl Certificate {
    /// Whether the certificate proves independence.
    pub fn is_independent(&self) -> bool {
        matches!(self, Certificate::Independent)
    }
}

impl fmt::Display for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Certificate::Independent => write!(f, "B003: independent (commutes)"),
            Certificate::Conflicting { witness, detail } => {
                write!(f, "B003: conflicting on {witness} — {detail}")
            }
        }
    }
}

/// Certify whether two batches (whose footprints were computed against
/// the same pre-state) commute. Disjointness is cell-level where the
/// structures commute by value (extents, sorted indexes, recomputed
/// statistics) and structure-level where commit order is observable:
/// whole colors (relabels remap every `OccId`), the element-id
/// allocator, and the symbol table.
pub fn certify(a: &Footprint, b: &Footprint) -> Certificate {
    let conflict = |witness: EffectKey, detail: &str| Certificate::Conflicting {
        witness,
        detail: detail.to_string(),
    };
    if let Some(&(e, at)) = a.writes.intersection(&b.writes).next() {
        return conflict(EffectKey::Write(e, at), "both batches write the cell");
    }
    // instance-level: a delete orders against any other touch of the
    // same instance (the late order would fail validation, or fan out
    // to a different copy set and land on a different epoch)
    for (x, y, what) in [(a, b, "first"), (b, a, "second")] {
        for &e in &y.deleted {
            if x.written_instances.contains(&e) {
                return conflict(
                    EffectKey::Instance(e),
                    &format!("written by one batch, deleted by the {what}"),
                );
            }
            if x.occ_added.contains(&e) {
                return conflict(
                    EffectKey::Instance(e),
                    &format!("gains an occurrence in one batch, deleted by the {what}"),
                );
            }
            if x.link_targets.contains(&e) {
                return conflict(
                    EffectKey::Instance(e),
                    &format!("linked by one batch's insert, deleted by the {what}"),
                );
            }
        }
    }
    if let Some(&e) = a.deleted.intersection(&b.deleted).next() {
        return conflict(EffectKey::Instance(e), "both batches delete the instance");
    }
    if let Some(&e) = a.occ_added.intersection(&b.occ_added).next() {
        return conflict(EffectKey::Instance(e), "both batches extend the instance's occurrences");
    }
    for (x, y) in [(a, b), (b, a)] {
        if let Some(&e) = x.occ_added.intersection(&y.written_instances).next() {
            return conflict(
                EffectKey::Instance(e),
                "one batch writes the instance, the other adds a copy (write fan-out differs \
                 by order)",
            );
        }
    }
    if let Some(&c) = a.colors.intersection(&b.colors).next() {
        return conflict(EffectKey::Color(c), "both batches relabel the color");
    }
    if let Some(&(n, o)) = a.ordinals.intersection(&b.ordinals).next() {
        return conflict(EffectKey::Ordinal(n, o), "both batches touch the ordinal slot");
    }
    if let Some(&(n, at, e)) = a.postings.intersection(&b.postings).next() {
        return conflict(EffectKey::Posting(n, at, e), "both batches touch the posting");
    }
    if let Some(&(e, o)) = a.links.intersection(&b.links).next() {
        return conflict(EffectKey::Link(e, o), "both batches touch the link cell");
    }
    if !a.allocated.is_empty() && !b.allocated.is_empty() {
        return conflict(
            EffectKey::Alloc,
            "both batches allocate element ids (order assigns them)",
        );
    }
    if !a.new_symbols.is_empty() && !b.new_symbols.is_empty() {
        return conflict(EffectKey::Intern, "both batches intern new symbols (order assigns them)");
    }
    Certificate::Independent
}

/// A staged multi-batch commit plan: per-batch footprints, the pairwise
/// certificates, and the independence classes they induce.
#[derive(Debug, Clone)]
pub struct CommitPlan {
    /// Footprint per staged batch, in stage order.
    pub footprints: Vec<Footprint>,
    /// One certificate per unordered pair `(i, j)`, `i < j`.
    pub certificates: Vec<(usize, usize, Certificate)>,
    /// Independence classes: connected components of the conflict
    /// graph, each sorted by stage order; classes ordered by their
    /// earliest member. Distinct classes are mutually independent.
    pub classes: Vec<Vec<usize>>,
}

/// Receipt of one group-committed independence class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupReceipt {
    /// Stage indices of the class's batches, in commit order.
    pub members: Vec<usize>,
    /// Per-batch receipts (epochs rewritten to the group's commit
    /// epoch).
    pub receipts: Vec<BatchReceipt>,
    /// The single epoch the class committed under.
    pub epoch: u64,
}

/// The first consumer of the certificates: stage several batches,
/// partition them into independence classes, and group-commit each
/// class under **one** epoch bump, so a class of mutually conflicting
/// batches is one version step and independent classes never pay for
/// each other's ordering.
///
/// Within a class, batches apply sequentially in stage order (they
/// conflict — order is semantics). A batch that fails validation
/// aborts its class atomically: the class's staged clone is dropped,
/// previously committed classes remain, and the error is returned with
/// the failing stage index.
#[derive(Debug, Clone, Default)]
pub struct CommitScheduler {
    batches: Vec<UpdateBatch>,
}

impl CommitScheduler {
    /// An empty scheduler.
    pub fn new() -> Self {
        CommitScheduler::default()
    }

    /// Stage a batch; returns its stage index.
    pub fn stage(&mut self, batch: UpdateBatch) -> usize {
        self.batches.push(batch);
        self.batches.len() - 1
    }

    /// Number of staged batches.
    pub fn len(&self) -> usize {
        self.batches.len()
    }

    /// Whether nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.batches.is_empty()
    }

    /// The staged batches, in stage order.
    pub fn batches(&self) -> &[UpdateBatch] {
        &self.batches
    }

    /// Analyze every staged batch against `db` and partition them into
    /// independence classes via the pairwise certificates.
    pub fn plan(&self, db: &Database, graph: &ErGraph) -> CommitPlan {
        let footprints: Vec<Footprint> =
            self.batches.iter().map(|b| analyze_batch(b, db, graph).footprint).collect();
        let n = footprints.len();
        let mut certificates = Vec::new();
        // union-find over the conflict graph
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut Vec<usize>, i: usize) -> usize {
            if parent[i] != i {
                let r = find(parent, parent[i]);
                parent[i] = r;
            }
            parent[i]
        }
        for i in 0..n {
            for j in i + 1..n {
                let cert = certify(&footprints[i], &footprints[j]);
                if !cert.is_independent() {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    parent[ri.max(rj)] = ri.min(rj);
                }
                certificates.push((i, j, cert));
            }
        }
        let mut by_root: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for i in 0..n {
            let r = find(&mut parent, i);
            by_root.entry(r).or_default().push(i);
        }
        CommitPlan { footprints, certificates, classes: by_root.into_values().collect() }
    }

    /// Group-commit every staged batch: one epoch bump per independence
    /// class. On error the failing class is rolled back whole (classes
    /// committed before it remain) and the failing stage index is
    /// returned with the batch error.
    pub fn commit(
        &self,
        db: &mut Database,
        graph: &ErGraph,
    ) -> Result<Vec<GroupReceipt>, (usize, BatchError)> {
        let plan = self.plan(db, graph);
        let mut groups = Vec::with_capacity(plan.classes.len());
        for class in &plan.classes {
            let mut staged = db.clone();
            let mut receipts = Vec::with_capacity(class.len());
            for &i in class {
                match self.batches[i].apply(&mut staged, graph) {
                    Ok(r) => receipts.push(r),
                    Err(e) => return Err((i, e)),
                }
            }
            let epoch = db.epoch() + 1;
            staged.set_epoch(epoch);
            for r in &mut receipts {
                r.epoch = epoch;
            }
            *db = staged;
            groups.push(GroupReceipt { members: class.clone(), receipts, epoch });
        }
        Ok(groups)
    }

    /// The admission hook for long-lived users (the query service's
    /// write path, DESIGN.md §15): group-commit everything currently
    /// staged, then clear the scheduler so the next admission window
    /// starts empty. Equivalent to [`CommitScheduler::commit`] followed
    /// by dropping the scheduler, but reuses the allocation. On error
    /// the staged batches are **kept** (the failing stage index refers
    /// to them), so the caller can inspect, drop, or re-stage.
    pub fn drain_commit(
        &mut self,
        db: &mut Database,
        graph: &ErGraph,
    ) -> Result<Vec<GroupReceipt>, (usize, BatchError)> {
        let groups = self.commit(db, graph)?;
        self.batches.clear();
        Ok(groups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchPosition;
    use crate::database::DatabaseBuilder;
    use colorist_er::{Attribute, ErDiagram};

    fn tiny() -> (ErGraph, Database) {
        let mut d = ErDiagram::new("t");
        d.add_entity("a", vec![Attribute::key("id")]).unwrap();
        d.add_entity("b", vec![Attribute::key("id"), Attribute::text("x")]).unwrap();
        d.add_rel_1m("r", "a", "b").unwrap();
        let g = ErGraph::from_diagram(&d).unwrap();
        let s = colorist_core::design(&g, colorist_core::Strategy::En).unwrap();
        let a = g.node_by_name("a").unwrap();
        let b = g.node_by_name("b").unwrap();
        let r = g.node_by_name("r").unwrap();
        let c = ColorId(0);
        let pa = s.placements_of_in_color(a, c)[0];
        let pr = s.placements_of_in_color(r, c)[0];
        let pb = s.placements_of_in_color(b, c)[0];
        let mut bd = DatabaseBuilder::new(s.clone(), g.node_count());
        let ea0 = bd.add_canonical(a, vec![Value::Int(0)]);
        let ea1 = bd.add_canonical(a, vec![Value::Int(1)]);
        let er0 = bd.add_canonical(r, vec![]);
        let er1 = bd.add_canonical(r, vec![]);
        let eb0 = bd.add_canonical(b, vec![Value::Int(0), Value::Text("u".into())]);
        let eb1 = bd.add_canonical(b, vec![Value::Int(1), Value::Text("v".into())]);
        let oa0 = bd.add_occurrence(c, ea0, pa, None);
        let _oa1 = bd.add_occurrence(c, ea1, pa, None);
        let or0 = bd.add_occurrence(c, er0, pr, Some(oa0));
        let or1 = bd.add_occurrence(c, er1, pr, Some(oa0));
        bd.add_occurrence(c, eb0, pb, Some(or0));
        bd.add_occurrence(c, eb1, pb, Some(or1));
        (g, bd.finish())
    }

    #[test]
    fn footprint_covers_what_the_commit_touches() {
        let (g, mut db) = tiny();
        let b = g.node_by_name("b").unwrap();
        let c = ColorId(0);
        let eb0 = db.extent(b)[0];
        let eb1 = db.extent(b)[1];
        let pb = db.schema.placements_of_in_color(b, c)[0];
        let pr = db.schema.placements_of_in_color(g.node_by_name("r").unwrap(), c)[0];
        let parent = db.color(c).of_placement(pr)[0];
        let mut batch = UpdateBatch::new();
        batch.write_attr(eb0, 0, Value::Int(42));
        batch.insert(
            b,
            vec![Value::Int(9), Value::Text("w".into())],
            vec![BatchPosition { color: c, placement: pb, parent: Some(parent) }],
            vec![],
        );
        batch.delete(eb1);
        let analysis = analyze_batch(&batch, &db, &g);
        assert!(analysis.diags.is_empty(), "{:?}", analysis.diags);
        let (receipt, analysis2, touched) = batch.apply_verified(&mut db, &g).expect("valid");
        // B002: dynamic ⊆ static
        assert_eq!(analysis2.footprint.covers(&touched), Ok(()));
        assert_eq!(analysis.footprint, analysis2.footprint);
        // the receipt digest matches the analysis and counts something
        assert_eq!(receipt.footprint, analysis.footprint.summary());
        assert!(receipt.footprint.effect_keys() > 0);
        // the predicted insert id is the one the commit allocated
        assert!(analysis.footprint.allocated.contains(&receipt.inserted[0]));
        assert_eq!(db.check_integrity(), Ok(()));
    }

    #[test]
    fn b001_localizes_intra_batch_conflicts() {
        let (g, db) = tiny();
        let b = g.node_by_name("b").unwrap();
        let eb0 = db.extent(b)[0];
        let eb1 = db.extent(b)[1];
        let mut batch = UpdateBatch::new();
        batch.write_attr(eb0, 0, Value::Int(1)); // op 0
        batch.write_attr(eb0, 0, Value::Int(2)); // op 1: double write
        batch.write_attr(eb1, 1, Value::Int(3)); // op 2
        batch.delete(eb1); // op 3: write + delete
        let analysis = analyze_batch(&batch, &db, &g);
        let codes: Vec<_> = analysis.diags.iter().map(|d| (d.code, d.ops.clone())).collect();
        assert!(codes.contains(&("B001", vec![0, 1])), "{codes:?}");
        assert!(codes.contains(&("B001", vec![2, 3])), "{codes:?}");
        let dup = analysis.diags.iter().find(|d| d.ops == vec![0, 1]).unwrap();
        assert_eq!(dup.key, Some(EffectKey::Write(eb0, 0)));
        assert!(dup.to_string().starts_with("B001[op 0,1]"), "{dup}");
    }

    #[test]
    fn disjoint_batches_certify_independent_and_commute() {
        let (g, db) = tiny();
        let b = g.node_by_name("b").unwrap();
        let eb0 = db.extent(b)[0];
        let eb1 = db.extent(b)[1];
        let mut x = UpdateBatch::new();
        x.write_attr(eb0, 0, Value::Int(100));
        let mut y = UpdateBatch::new();
        y.write_attr(eb1, 0, Value::Int(200));
        let fx = analyze_batch(&x, &db, &g).footprint;
        let fy = analyze_batch(&y, &db, &g).footprint;
        assert_eq!(certify(&fx, &fy), Certificate::Independent);
        // both commit orders land on byte-identical state, epoch included
        let mut d1 = db.clone();
        x.apply(&mut d1, &g).unwrap();
        y.apply(&mut d1, &g).unwrap();
        let mut d2 = db.clone();
        y.apply(&mut d2, &g).unwrap();
        x.apply(&mut d2, &g).unwrap();
        assert_eq!(d1.same_state(&d2, true), Ok(()));
    }

    #[test]
    fn conflicts_name_a_witness_key() {
        let (g, db) = tiny();
        let b = g.node_by_name("b").unwrap();
        let eb0 = db.extent(b)[0];
        let eb1 = db.extent(b)[1];
        // same write cell
        let mut x = UpdateBatch::new();
        x.write_attr(eb0, 0, Value::Int(1));
        let fx = analyze_batch(&x, &db, &g).footprint;
        match certify(&fx, &fx.clone()) {
            Certificate::Conflicting { witness: EffectKey::Write(e, 0), .. } => {
                assert_eq!(e, eb0);
            }
            other => panic!("want write conflict, got {other:?}"),
        }
        // write vs delete of the same instance
        let mut y = UpdateBatch::new();
        y.delete(eb0);
        let fy = analyze_batch(&y, &db, &g).footprint;
        match certify(&fx, &fy) {
            Certificate::Conflicting { witness: EffectKey::Instance(e), .. } => {
                assert_eq!(e, eb0);
            }
            other => panic!("want instance conflict, got {other:?}"),
        }
        // two deletes structurally edit the same color
        let mut z = UpdateBatch::new();
        z.delete(eb1);
        let fz = analyze_batch(&z, &db, &g).footprint;
        match certify(&fy, &fz) {
            Certificate::Conflicting { witness: EffectKey::Color(c), .. } => {
                assert_eq!(c, ColorId(0));
            }
            other => panic!("want color conflict, got {other:?}"),
        }
        // two allocating batches order the id counter
        let c = ColorId(0);
        let pb = db.schema.placements_of_in_color(b, c)[0];
        let pr = db.schema.placements_of_in_color(g.node_by_name("r").unwrap(), c)[0];
        let parent = db.color(c).of_placement(pr)[0];
        let ins = |v: i64, s: &str| {
            let mut w = UpdateBatch::new();
            w.insert(
                b,
                vec![Value::Int(v), Value::Text(s.into())],
                vec![BatchPosition { color: c, placement: pb, parent: Some(parent) }],
                vec![],
            );
            w
        };
        let fi = analyze_batch(&ins(8, "u"), &db, &g).footprint;
        let fj = analyze_batch(&ins(9, "v"), &db, &g).footprint;
        match certify(&fi, &fj) {
            // both predict the same next element id, so the overlap is
            // witnessed before the color / allocator checks even run
            Certificate::Conflicting { witness, .. } => {
                assert!(
                    matches!(
                        witness,
                        EffectKey::Instance(_) | EffectKey::Color(_) | EffectKey::Alloc
                    ),
                    "{witness}"
                );
            }
            other => panic!("want conflict, got {other:?}"),
        }
        assert!(fi.contains(&EffectKey::Alloc));
        assert!(fj.contains(&EffectKey::Alloc));
    }

    #[test]
    fn read_footprint_invalidation_names_the_overlap() {
        let (g, db) = tiny();
        let b = g.node_by_name("b").unwrap();
        let eb1 = db.extent(b)[1];
        let mut y = UpdateBatch::new();
        y.delete(eb1);
        let fy = analyze_batch(&y, &db, &g).footprint;
        let mut reads = ReadFootprint::default();
        reads.nodes.insert(g.node_by_name("a").unwrap());
        assert_eq!(fy.invalidates(&reads), None, "disjoint reads stay valid");
        reads.colors.insert(ColorId(0));
        assert_eq!(fy.invalidates(&reads), Some(EffectKey::Color(ColorId(0))));
        let mut reads2 = ReadFootprint::default();
        reads2.nodes.insert(b);
        assert_eq!(fy.invalidates(&reads2), Some(EffectKey::Extent(b)));
    }

    #[test]
    fn scheduler_partitions_classes_and_bumps_once_per_class() {
        let (g, mut db) = tiny();
        let b = g.node_by_name("b").unwrap();
        let eb0 = db.extent(b)[0];
        let eb1 = db.extent(b)[1];
        let mut s = CommitScheduler::new();
        let mut x = UpdateBatch::new();
        x.write_attr(eb0, 0, Value::Int(1));
        s.stage(x);
        let mut y = UpdateBatch::new();
        y.write_attr(eb0, 1, Value::Int(2)); // same instance? no — same cell? no.
        s.stage(y);
        let mut z = UpdateBatch::new();
        z.write_attr(eb1, 0, Value::Int(3));
        s.stage(z);
        let plan = s.plan(&db, &g);
        // batches 0 and 1 share the posting surface of eb0? they write
        // different attrs of the same instance — disjoint cells, disjoint
        // postings, so all three are mutually independent
        assert_eq!(plan.classes, vec![vec![0], vec![1], vec![2]]);
        assert!(plan.certificates.iter().all(|(_, _, c)| c.is_independent()));
        let epoch0 = db.epoch();
        let groups = s.commit(&mut db, &g).expect("all valid");
        assert_eq!(groups.len(), 3);
        for (k, gr) in groups.iter().enumerate() {
            assert_eq!(gr.epoch, epoch0 + 1 + k as u64);
            assert!(gr.receipts.iter().all(|r| r.epoch == gr.epoch));
        }
        assert_eq!(db.epoch(), epoch0 + 3);
        assert_eq!(db.element(eb0).attrs[0], Value::Int(1));
        assert_eq!(db.element(eb0).attrs[1], Value::Int(2));
        assert_eq!(db.element(eb1).attrs[0], Value::Int(3));
        assert_eq!(db.check_integrity(), Ok(()));

        // conflicting batches fuse into one class under one epoch bump
        let mut s2 = CommitScheduler::new();
        let mut p = UpdateBatch::new();
        p.write_attr(eb0, 0, Value::Int(7));
        s2.stage(p);
        let mut q = UpdateBatch::new();
        q.write_attr(eb0, 0, Value::Int(8));
        s2.stage(q);
        let plan2 = s2.plan(&db, &g);
        assert_eq!(plan2.classes, vec![vec![0, 1]]);
        let epoch1 = db.epoch();
        let groups2 = s2.commit(&mut db, &g).expect("sequential within class");
        assert_eq!(groups2.len(), 1);
        assert_eq!(groups2[0].epoch, epoch1 + 1);
        assert_eq!(db.epoch(), epoch1 + 1, "one bump for the whole class");
        assert_eq!(db.element(eb0).attrs[0], Value::Int(8), "stage order wins");
    }

    #[test]
    fn scheduler_aborts_a_failing_class_and_keeps_earlier_classes() {
        let (g, mut db) = tiny();
        let b = g.node_by_name("b").unwrap();
        let eb0 = db.extent(b)[0];
        let eb1 = db.extent(b)[1];
        let mut s = CommitScheduler::new();
        let mut ok = UpdateBatch::new();
        ok.write_attr(eb0, 0, Value::Int(5));
        s.stage(ok);
        let mut bad = UpdateBatch::new();
        bad.write_attr(eb1, 9, Value::Int(6)); // attr out of range
        s.stage(bad);
        let err = s.commit(&mut db, &g).expect_err("second class fails");
        assert_eq!(err.0, 1);
        assert!(matches!(err.1, BatchError::BadAttr { .. }));
        // the first class committed, the failing one rolled back whole
        assert_eq!(db.element(eb0).attrs[0], Value::Int(5));
        assert_eq!(db.element(eb1).attrs[0], Value::Int(1));
        assert_eq!(db.check_integrity(), Ok(()));
    }
}

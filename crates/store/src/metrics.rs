//! Query/update cost counters — the complexity surrogates of §6.
//!
//! The paper's analysis of the ER collection (and much of the TPC-W
//! discussion) rests on counting the expensive operations a query needs
//! under each schema: "the time taken to evaluate a query appears to be
//! almost proportional to the number of value joins or color crossings,
//! with an added amount if there is grouping or duplicate elimination
//! required. There is little correlation between the time to evaluate a
//! query and the number of structural joins."
//!
//! [`Metrics`] carries both the *plan-level* counts (filled by the
//! compiler, reported in Figures 8–10 and 12–14) and *runtime* totals
//! (filled by the executor, backing Table 1 / Figure 11).

use std::ops::AddAssign;
use std::time::Duration;

/// Operation counts plus runtime measurements for one query (or an
/// aggregate over a workload).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Metrics {
    /// Structural (containment) joins — Figure 8.
    pub structural_joins: u64,
    /// Value (id/idref) joins — Figure 9, first component.
    pub value_joins: u64,
    /// Color crossings (same-logical-node hops between colored trees) —
    /// Figure 9, second component.
    pub color_crossings: u64,
    /// Duplicate eliminations — Figure 10.
    pub dup_eliminations: u64,
    /// Group-by-value operations — Figure 10.
    pub group_bys: u64,
    /// Duplicate updates (extra physical writes to copies) — Figure 10.
    pub duplicate_updates: u64,
    /// ICIC maintenance writes (re-applying an update in another color).
    pub icic_maintenance: u64,
    /// Elements touched (scan + probe volume).
    pub elements_scanned: u64,
    /// Tuples produced by the final operator.
    pub results: u64,
    /// Distinct logical results (differs from `results` when a
    /// non-node-normalized schema returns duplicates; the parenthesized
    /// numbers of Table 1).
    pub distinct_results: u64,
    /// Measured evaluation time of **this query alone** — the wall-clock
    /// span between the start and end of its `execute`/`execute_update`
    /// call. Under the parallel suite runner
    /// (`colorist_workload::suite::run_suite_on`), queries from different
    /// strategies run concurrently, so these per-query spans overlap in
    /// real time: summing them over a suite yields aggregate CPU-ish work,
    /// **not** the suite's wall time (per-query values may also be inflated
    /// by scheduling contention). The suite's end-to-end wall time is
    /// reported separately as `SuiteResult::suite_wall`.
    pub elapsed: Duration,
}

impl Metrics {
    /// Figure 9's combined metric.
    pub fn value_joins_plus_crossings(&self) -> u64 {
        self.value_joins + self.color_crossings
    }

    /// Figure 10's combined metric.
    pub fn dup_group_metric(&self) -> u64 {
        self.dup_eliminations + self.group_bys + self.duplicate_updates
    }

    /// Number of duplicate results returned (0 for normalized schemas).
    pub fn duplicate_results(&self) -> u64 {
        self.results.saturating_sub(self.distinct_results)
    }
}

impl AddAssign for Metrics {
    fn add_assign(&mut self, rhs: Metrics) {
        self.structural_joins += rhs.structural_joins;
        self.value_joins += rhs.value_joins;
        self.color_crossings += rhs.color_crossings;
        self.dup_eliminations += rhs.dup_eliminations;
        self.group_bys += rhs.group_bys;
        self.duplicate_updates += rhs.duplicate_updates;
        self.icic_maintenance += rhs.icic_maintenance;
        self.elements_scanned += rhs.elements_scanned;
        self.results += rhs.results;
        self.distinct_results += rhs.distinct_results;
        self.elapsed += rhs.elapsed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combined_metrics() {
        let m = Metrics {
            value_joins: 2,
            color_crossings: 3,
            dup_eliminations: 1,
            duplicate_updates: 4,
            results: 10,
            distinct_results: 7,
            ..Default::default()
        };
        assert_eq!(m.value_joins_plus_crossings(), 5);
        assert_eq!(m.dup_group_metric(), 5);
        assert_eq!(m.duplicate_results(), 3);
    }

    #[test]
    fn add_assign_sums_fields() {
        let mut a = Metrics { structural_joins: 1, ..Default::default() };
        let b = Metrics { structural_joins: 2, value_joins: 1, ..Default::default() };
        a += b;
        assert_eq!(a.structural_joins, 3);
        assert_eq!(a.value_joins, 1);
    }
}

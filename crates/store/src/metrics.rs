//! Query/update cost counters — the complexity surrogates of §6.
//!
//! The paper's analysis of the ER collection (and much of the TPC-W
//! discussion) rests on counting the expensive operations a query needs
//! under each schema: "the time taken to evaluate a query appears to be
//! almost proportional to the number of value joins or color crossings,
//! with an added amount if there is grouping or duplicate elimination
//! required. There is little correlation between the time to evaluate a
//! query and the number of structural joins."
//!
//! [`Metrics`] carries both the *plan-level* counts (filled by the
//! compiler, reported in Figures 8–10 and 12–14) and *runtime* totals
//! (filled by the executor, backing Table 1 / Figure 11).

use std::ops::AddAssign;
use std::time::Duration;

/// Operation counts plus runtime measurements for one query (or an
/// aggregate over a workload).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Metrics {
    /// Structural (containment) joins — Figure 8.
    pub structural_joins: u64,
    /// Value (id/idref) joins — Figure 9, first component.
    pub value_joins: u64,
    /// Color crossings (same-logical-node hops between colored trees) —
    /// Figure 9, second component.
    pub color_crossings: u64,
    /// Duplicate eliminations — Figure 10.
    pub dup_eliminations: u64,
    /// Group-by-value operations — Figure 10.
    pub group_bys: u64,
    /// Duplicate updates (extra physical writes to copies) — Figure 10.
    pub duplicate_updates: u64,
    /// ICIC maintenance writes (re-applying an update in another color).
    pub icic_maintenance: u64,
    /// Elements touched (scan + probe volume).
    pub elements_scanned: u64,
    /// Candidate tests performed inside the join kernels: containment tests
    /// against the ancestor stack for structural (semi-)joins, hash-table
    /// probes for value joins, adjacency lookups for link joins. A finer
    /// work surrogate than `structural_joins`/`value_joins` (which count
    /// operator invocations) — deterministic for a given plan and database.
    pub join_probes: u64,
    /// Bytes of stored data moved through the operators: occurrence records
    /// merged by structural joins, join keys hashed by value joins, element
    /// ids crossed/deduplicated. A proxy for memory traffic; deterministic.
    pub bytes_touched: u64,
    /// Probes answered by the persistent index layer: one per key lookup in
    /// the attribute value index (`Scan` with an equality predicate), one
    /// per distinct key group examined by a range predicate, and one per
    /// source element resolved through the id→element index (`ValueSemi`).
    /// Zero on the reference (linear/merge) kernels — deterministic for a
    /// given plan and database.
    pub index_lookups: u64,
    /// Elements the index layer and the gallop-skipping join kernels proved
    /// irrelevant *without touching them*: extent entries an index probe
    /// avoided walking, and occurrence-list runs a gallop join leapt over by
    /// binary search. The complement of `elements_scanned` relative to the
    /// reference kernels' full walks; deterministic.
    pub elements_skipped: u64,
    /// Pages fetched from the storage backend because the buffer pool did
    /// not hold them (pool misses). Zero on the in-memory heap backend —
    /// only the paged backend (DESIGN.md §14) maintains a pool. One per
    /// distinct page faulted in, deterministic for a given plan, database
    /// and pool budget.
    pub page_reads: u64,
    /// Pages written back to the storage backend at a commit point: dirty
    /// segment pages, the segment directory, and the meta page. Charged to
    /// the flushing update/batch, zero for pure reads and for the heap
    /// backend.
    pub page_writes: u64,
    /// Page requests answered by the buffer pool without touching the
    /// backend. `pool_hits / (pool_hits + page_reads)` is the hit rate
    /// EXPERIMENTS.md's pool-size narrative plots.
    pub pool_hits: u64,
    /// Unpinned pages evicted by the clock sweep to make room under the
    /// pool byte budget. Exact-matched by the perfgate like every other
    /// deterministic counter.
    pub pool_evictions: u64,
    /// Prepared-plan cache hits: the query's plan was served from the
    /// sharded plan cache (DESIGN.md §15) without recompiling or
    /// re-optimizing. Deterministic for a given request schedule (a query
    /// either is or is not the first of its `(pattern, strategy,
    /// statistics-epoch)` key).
    pub plan_cache_hits: u64,
    /// Prepared-plan cache misses: the plan was compiled + optimized and
    /// inserted. Every request charges exactly one of
    /// `plan_cache_hits`/`plan_cache_misses` when it goes through the
    /// cache, and neither when it executes a pre-built plan directly.
    pub plan_cache_misses: u64,
    /// Plans evicted from the cache by the per-shard capacity sweep.
    /// Deterministic for a given request schedule and cache capacity.
    pub plan_cache_evictions: u64,
    /// Nanoseconds a server request waited in the submission queue before
    /// a worker picked it up (DESIGN.md §15). Wall-clock derived, hence
    /// machine-dependent like `elapsed` — reported, never exact-gated.
    pub queue_wait_ns: u64,
    /// Tuples produced by the final operator.
    pub results: u64,
    /// Distinct logical results (differs from `results` when a
    /// non-node-normalized schema returns duplicates; the parenthesized
    /// numbers of Table 1).
    pub distinct_results: u64,
    /// Measured evaluation time of **this query alone** — the wall-clock
    /// span between the start and end of its `execute`/`execute_update`
    /// call. Under the parallel suite runner
    /// (`colorist_workload::suite::run_suite_on`), queries from different
    /// strategies run concurrently, so these per-query spans overlap in
    /// real time: summing them over a suite yields aggregate CPU-ish work,
    /// **not** the suite's wall time (per-query values may also be inflated
    /// by scheduling contention). The suite's end-to-end wall time is
    /// reported separately as `SuiteResult::suite_wall`.
    pub elapsed: Duration,
}

impl Metrics {
    /// Figure 9's combined metric.
    ///
    /// ```
    /// let m = colorist_store::Metrics { value_joins: 2, color_crossings: 3, ..Default::default() };
    /// assert_eq!(m.value_joins_plus_crossings(), 5);
    /// ```
    pub fn value_joins_plus_crossings(&self) -> u64 {
        self.value_joins + self.color_crossings
    }

    /// The field-wise difference `self - earlier`: what was charged between
    /// two snapshots of an accumulating counter set. Every count saturates
    /// at zero, so a stale (larger) `earlier` cannot underflow. This is how
    /// the executor attributes per-operator costs in `EXPLAIN ANALYZE`: a
    /// snapshot before and after each operator, and the deltas sum back to
    /// the query totals exactly.
    ///
    /// ```
    /// use colorist_store::Metrics;
    /// let before = Metrics { structural_joins: 1, elements_scanned: 100, ..Default::default() };
    /// let after = Metrics { structural_joins: 2, elements_scanned: 250, ..Default::default() };
    /// let delta = after.since(&before);
    /// assert_eq!(delta.structural_joins, 1);
    /// assert_eq!(delta.elements_scanned, 150);
    /// ```
    pub fn since(&self, earlier: &Metrics) -> Metrics {
        Metrics {
            structural_joins: self.structural_joins.saturating_sub(earlier.structural_joins),
            value_joins: self.value_joins.saturating_sub(earlier.value_joins),
            color_crossings: self.color_crossings.saturating_sub(earlier.color_crossings),
            dup_eliminations: self.dup_eliminations.saturating_sub(earlier.dup_eliminations),
            group_bys: self.group_bys.saturating_sub(earlier.group_bys),
            duplicate_updates: self.duplicate_updates.saturating_sub(earlier.duplicate_updates),
            icic_maintenance: self.icic_maintenance.saturating_sub(earlier.icic_maintenance),
            elements_scanned: self.elements_scanned.saturating_sub(earlier.elements_scanned),
            join_probes: self.join_probes.saturating_sub(earlier.join_probes),
            bytes_touched: self.bytes_touched.saturating_sub(earlier.bytes_touched),
            index_lookups: self.index_lookups.saturating_sub(earlier.index_lookups),
            elements_skipped: self.elements_skipped.saturating_sub(earlier.elements_skipped),
            page_reads: self.page_reads.saturating_sub(earlier.page_reads),
            page_writes: self.page_writes.saturating_sub(earlier.page_writes),
            pool_hits: self.pool_hits.saturating_sub(earlier.pool_hits),
            pool_evictions: self.pool_evictions.saturating_sub(earlier.pool_evictions),
            plan_cache_hits: self.plan_cache_hits.saturating_sub(earlier.plan_cache_hits),
            plan_cache_misses: self.plan_cache_misses.saturating_sub(earlier.plan_cache_misses),
            plan_cache_evictions: self
                .plan_cache_evictions
                .saturating_sub(earlier.plan_cache_evictions),
            queue_wait_ns: self.queue_wait_ns.saturating_sub(earlier.queue_wait_ns),
            results: self.results.saturating_sub(earlier.results),
            distinct_results: self.distinct_results.saturating_sub(earlier.distinct_results),
            elapsed: self.elapsed.saturating_sub(earlier.elapsed),
        }
    }

    /// Figure 10's combined metric.
    pub fn dup_group_metric(&self) -> u64 {
        self.dup_eliminations + self.group_bys + self.duplicate_updates
    }

    /// Number of duplicate results returned (0 for normalized schemas).
    pub fn duplicate_results(&self) -> u64 {
        self.results.saturating_sub(self.distinct_results)
    }
}

impl AddAssign for Metrics {
    fn add_assign(&mut self, rhs: Metrics) {
        self.structural_joins += rhs.structural_joins;
        self.value_joins += rhs.value_joins;
        self.color_crossings += rhs.color_crossings;
        self.dup_eliminations += rhs.dup_eliminations;
        self.group_bys += rhs.group_bys;
        self.duplicate_updates += rhs.duplicate_updates;
        self.icic_maintenance += rhs.icic_maintenance;
        self.elements_scanned += rhs.elements_scanned;
        self.join_probes += rhs.join_probes;
        self.bytes_touched += rhs.bytes_touched;
        self.index_lookups += rhs.index_lookups;
        self.elements_skipped += rhs.elements_skipped;
        self.page_reads += rhs.page_reads;
        self.page_writes += rhs.page_writes;
        self.pool_hits += rhs.pool_hits;
        self.pool_evictions += rhs.pool_evictions;
        self.plan_cache_hits += rhs.plan_cache_hits;
        self.plan_cache_misses += rhs.plan_cache_misses;
        self.plan_cache_evictions += rhs.plan_cache_evictions;
        self.queue_wait_ns += rhs.queue_wait_ns;
        self.results += rhs.results;
        self.distinct_results += rhs.distinct_results;
        self.elapsed += rhs.elapsed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combined_metrics() {
        let m = Metrics {
            value_joins: 2,
            color_crossings: 3,
            dup_eliminations: 1,
            duplicate_updates: 4,
            results: 10,
            distinct_results: 7,
            ..Default::default()
        };
        assert_eq!(m.value_joins_plus_crossings(), 5);
        assert_eq!(m.dup_group_metric(), 5);
        assert_eq!(m.duplicate_results(), 3);
    }

    #[test]
    fn add_assign_sums_fields() {
        let mut a = Metrics { structural_joins: 1, ..Default::default() };
        let b = Metrics { structural_joins: 2, value_joins: 1, ..Default::default() };
        a += b;
        assert_eq!(a.structural_joins, 3);
        assert_eq!(a.value_joins, 1);
    }
}

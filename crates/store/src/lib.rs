//! # colorist-store — a TIMBER-like native MCT storage engine
//!
//! The paper's experiments run on TIMBER, a native XML database with
//! interval node labels enabling structural joins. This crate is the
//! equivalent substrate for MCT databases:
//!
//! * [`value`] — attribute values;
//! * [`database`] — the stored database: **elements** (one per logical ER
//!   instance, plus physical *copies* for un-normalized schemas) and
//!   per-color **occurrence trees** carrying `(start, end, level)` interval
//!   labels computed by DFS — a node belongs to exactly one rooted tree per
//!   color, per the MCT model;
//! * [`join`] — the two join primitives whose cost asymmetry drives the
//!   paper's entire design space: stack-based interval **structural joins**
//!   (cheap; Al-Khalifa et al., ICDE 2002) and hash-based **value joins**
//!   over id/idref attributes (expensive), with gallop-skipping structural
//!   variants that binary-search past non-joining runs when one side is
//!   much smaller;
//! * [`index`] — the persistent attribute/id value index over canonical
//!   elements, which turns selective predicate scans and idref probes into
//!   index lookups (TIMBER never scans a document linearly);
//! * [`metrics`] — the operation counters the paper reports in Figures 8–10
//!   (structural joins, value joins, color crossings, duplicate
//!   eliminations, …) plus wall-clock time;
//! * [`stats`] — the storage statistics of Table 1 (elements, attributes,
//!   content nodes, data bytes, colors);
//! * [`statistics`] — the optimizer's statistics catalog: per-(node, attr)
//!   distinct counts and equi-depth histograms built from the value index,
//!   extent cardinalities, and per-placement occurrence counts, feeding
//!   cardinality/selectivity estimation and the cost-model kernel dispatch;
//! * [`batch`] — atomic update batches: cross-op validation up front, one
//!   copy-on-write commit point, so readers holding a
//!   [`database::Snapshot`] never observe a half-applied batch;
//! * [`effect`] — static batch effect analysis (the B001–B004 diagnostic
//!   family): per-batch effect footprints computed without executing,
//!   shadow-tracker soundness auditing, pairwise commutativity
//!   certificates, snapshot-safety checks against plan read footprints,
//!   and the independence-scheduled [`effect::CommitScheduler`] that
//!   group-commits mutually independent batches under one epoch bump;
//! * [`page`], [`pool`], [`storage`] — the pluggable paged storage layer
//!   (DESIGN.md §14): the 8 KB-page [`page::StorageBackend`] trait with
//!   in-memory and on-disk implementations, the clock/second-chance
//!   [`pool::BufferPool`] with pin/unpin discipline, and the segment
//!   serialization + dirty-tracking + commit/write-back protocol that
//!   attaches a [`database::Database`] to a backend
//!   ([`database::Database::attach_paged`]) and accounts page traffic in
//!   the `page_reads`/`page_writes`/`pool_hits`/`pool_evictions` counters.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod database;
pub mod effect;
pub mod index;
pub mod join;
pub mod metrics;
pub mod page;
pub mod pool;
pub mod statistics;
pub mod stats;
pub mod storage;
pub mod value;
pub mod xml;

pub use batch::{BatchError, BatchLink, BatchOp, BatchPosition, BatchReceipt, UpdateBatch};
pub use database::{
    ColorTree, Database, DatabaseBuilder, Element, ElementId, KernelDispatch, OccId, Occurrence,
    Snapshot,
};
pub use effect::{
    analyze_batch, certify, BatchDiag, Certificate, CommitPlan, CommitScheduler, EffectAnalysis,
    EffectKey, Footprint, FootprintSummary, GroupReceipt, ReadFootprint, TouchedSet,
};
pub use index::{IndexEntry, ValueIndex};
pub use join::{
    attr_key, attr_value, kmerge_sorted, structural_join, structural_join_merge,
    structural_semi_join, structural_semi_join_merge, value_join, AttrRef, Axis, SemiSide,
    GALLOP_RATIO,
};
pub use metrics::Metrics;
pub use page::{FilePages, MemPages, PageId, StorageBackend, PAGE_SIZE};
pub use pool::{BufferPool, PoolConfig, DEFAULT_POOL_BYTES};
pub use statistics::{
    gallop_cost_wins, key_order, Bucket, Cardinality, CmpKind, ColumnStats, Selectivity,
    Statistics, HISTOGRAM_BUCKETS,
};
pub use stats::Stats;
pub use storage::{attach_from_env, env_backend, env_pool_bytes, FlushReport, StorageCtx};
pub use value::{Interner, Value, ValueKey};
pub use xml::to_xml;

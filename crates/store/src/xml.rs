//! XML serialization of a color tree — the document a single color *is*.
//!
//! A one-color MCT database is an XML database (§2.2); this module writes
//! any color of any database out as an XML document, with the implicit
//! `id` attribute, declared attributes, idref attributes, and text-domain
//! values as text children, matching the storage model in
//! [`crate::stats`]. Useful for eyeballing schemas, diffing instances, and
//! feeding external XML tooling.

use crate::database::{Database, OccId};
use crate::value::Value;
use colorist_er::{Domain, ErGraph};
use colorist_mct::ColorId;
use std::fmt::Write as _;

/// Serialize one color of the database as an XML document.
pub fn to_xml(db: &Database, graph: &ErGraph, color: ColorId) -> String {
    let mut s = String::with_capacity(db.color(color).occs().len() * 64);
    let _ = writeln!(s, r#"<?xml version="1.0" encoding="UTF-8"?>"#);
    let _ = writeln!(s, "<root color=\"{}\">", colorist_mct::color_name(color));
    let tree = db.color(color);
    // roots in document order
    let roots: Vec<OccId> = tree
        .occs()
        .iter()
        .enumerate()
        .filter(|(_, o)| o.parent.is_none())
        .map(|(i, _)| OccId(i as u32))
        .collect();
    for r in roots {
        emit(db, graph, color, r, 1, &mut s);
    }
    let _ = writeln!(s, "</root>");
    s
}

fn emit(db: &Database, graph: &ErGraph, color: ColorId, o: OccId, depth: usize, s: &mut String) {
    let tree = db.color(color);
    let occ = tree.occ(o);
    let el = db.element(occ.element);
    let node = graph.node(el.node);
    let indent = "  ".repeat(depth);
    let canon = db.element(el.canonical);

    let _ = write!(s, "{indent}<{} id=\"{}.{}\"", node.name, node.name, canon.ordinal);
    // declared non-text attributes inline; idref values too
    let mut text_parts: Vec<(String, String)> = Vec::new();
    for (i, a) in node.attributes.iter().enumerate() {
        match (&a.domain, &el.attrs[i]) {
            (Domain::Text | Domain::Date, v) => {
                text_parts.push((a.name.clone(), escape(&v.to_string())));
            }
            (_, v) => {
                let _ = write!(s, " {}=\"{}\"", a.name, escape(&v.to_string()));
            }
        }
    }
    for (k, l) in
        db.schema.idrefs().iter().filter(|l| graph.edge(l.edge).rel == el.node).enumerate()
    {
        let target = graph.node(graph.edge(l.edge).participant).name.clone();
        if let Some(Value::Int(v)) = el.attrs.get(node.attributes.len() + k) {
            let _ = write!(s, " {}=\"{target}.{v}\"", l.attr);
        }
    }

    // children: text nodes then sub-elements
    let children: Vec<OccId> = tree
        .occs()
        .iter()
        .enumerate()
        .filter(|(_, c)| c.parent == Some(o))
        .map(|(i, _)| OccId(i as u32))
        .collect();
    if text_parts.is_empty() && children.is_empty() {
        let _ = writeln!(s, "/>");
        return;
    }
    let _ = writeln!(s, ">");
    for (name, text) in text_parts {
        let _ = writeln!(s, "{indent}  <{name}>{text}</{name}>");
    }
    for c in children {
        emit(db, graph, color, c, depth + 1, s);
    }
    let _ = writeln!(s, "{indent}</{}>", node.name);
}

fn escape(v: &str) -> String {
    v.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;").replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use colorist_er::{Attribute, ErDiagram};

    #[test]
    fn serializes_a_tiny_tree() {
        let mut d = ErDiagram::new("t");
        d.add_entity("a", vec![Attribute::key("id"), Attribute::text("name")]).unwrap();
        d.add_entity("b", vec![Attribute::key("id")]).unwrap();
        d.add_rel_1m("r", "a", "b").unwrap();
        let g = ErGraph::from_diagram(&d).unwrap();
        let schema = colorist_core::design(&g, colorist_core::Strategy::En).unwrap();
        let a = g.node_by_name("a").unwrap();
        let r = g.node_by_name("r").unwrap();
        let b = g.node_by_name("b").unwrap();
        let c = ColorId(0);
        let pa = schema.placements_of_in_color(a, c)[0];
        let pr = schema.placements_of_in_color(r, c)[0];
        let pb = schema.placements_of_in_color(b, c)[0];
        let mut bd = crate::database::DatabaseBuilder::new(schema, g.node_count());
        let ea = bd.add_canonical(a, vec![Value::Int(0), Value::Text("x<y".into())]);
        let er = bd.add_canonical(r, vec![]);
        let eb = bd.add_canonical(b, vec![Value::Int(0)]);
        let oa = bd.add_occurrence(c, ea, pa, None);
        let or = bd.add_occurrence(c, er, pr, Some(oa));
        bd.add_occurrence(c, eb, pb, Some(or));
        let db = bd.finish();
        let xml = to_xml(&db, &g, c);
        assert!(xml.contains("<a id=\"a.0\""), "{xml}");
        assert!(xml.contains("<name>x&lt;y</name>"), "{xml}");
        assert!(xml.contains("<b id=\"b.0\"/>") || xml.contains("<b id=\"b.0\" "), "{xml}");
        assert!(xml.trim_end().ends_with("</root>"), "{xml}");
    }
}

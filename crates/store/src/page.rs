//! Fixed-size page I/O: the [`StorageBackend`] trait and its two
//! implementations.
//!
//! The paper's experiments ran on TIMBER over a disk-resident Shore
//! substrate with 8 KB pages and a fixed buffer pool; DESIGN.md §14 maps
//! that layer onto this reproduction. A backend is a flat, append-only
//! array of [`PAGE_SIZE`]-byte pages plus one rewritable **meta page**
//! (page 0, LMDB-style): commits append fresh pages for every dirty
//! segment and the new segment directory, then atomically repoint the meta
//! page at the new directory. Pages past the meta page are immutable once
//! written, which is what makes [`crate::database::Snapshot`]s safe under
//! concurrent flushes — an old directory keeps reading the exact pages it
//! was flushed to.
//!
//! Two implementations:
//!
//! * [`MemPages`] — pages in a `Vec<u8>` behind a mutex. The default for
//!   tests and differentials: identical accounting to the file backend,
//!   no filesystem dependency.
//! * [`FilePages`] — pages in a real file (`COLORIST_PAGE_DIR` or the
//!   system temp dir), deleted when the last handle drops. What the
//!   `--backend paged` benchmark knob uses.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Page size in bytes — 8 KB, matching the TIMBER configuration the paper
/// reports (§7: "a 256 KB \[sic\] buffer pool with 8 KB pages").
pub const PAGE_SIZE: usize = 8192;

/// Identifier of one page: its index in the backend's page array. Page 0
/// is the meta page; data pages start at 1.
pub type PageId = u64;

/// Number of pages needed to hold `bytes` bytes.
pub fn pages_for(bytes: u64) -> u64 {
    bytes.div_ceil(PAGE_SIZE as u64)
}

/// Page-granular storage: get/put/scan over fixed 8 KB pages plus the
/// rewritable meta page.
///
/// The write protocol is append-only and transactional: a commit calls
/// [`reserve`](StorageBackend::reserve) once for everything it will write
/// (all dirty segments **and** the new directory — this is the "one
/// backend transaction" `UpdateBatch::apply` commits through), lays the
/// buffer down with [`write_pages`](StorageBackend::write_pages), and
/// publishes it by rewriting the meta page. Reservations are atomic, so
/// concurrent committers (parallel update tasks on database clones) never
/// interleave within each other's page ranges.
pub trait StorageBackend: fmt::Debug + Send + Sync {
    /// Atomically reserve `pages` fresh pages, returning the id of the
    /// first. The reserved range is owned by the caller until written.
    fn reserve(&self, pages: u64) -> io::Result<PageId>;

    /// Write `data` starting at page `first` (a range previously handed
    /// out by [`reserve`](StorageBackend::reserve)); the final page is
    /// zero-padded to [`PAGE_SIZE`].
    fn write_pages(&self, first: PageId, data: &[u8]) -> io::Result<()>;

    /// Read one page into `buf` (must be [`PAGE_SIZE`] bytes).
    fn read_page(&self, page: PageId, buf: &mut [u8]) -> io::Result<()>;

    /// Read `count` consecutive pages starting at `first` — the scan
    /// primitive segment decoding uses.
    fn scan_pages(&self, first: PageId, count: u64, out: &mut Vec<u8>) -> io::Result<()> {
        out.clear();
        out.resize(count as usize * PAGE_SIZE, 0);
        for i in 0..count {
            let lo = i as usize * PAGE_SIZE;
            self.read_page(first + i, &mut out[lo..lo + PAGE_SIZE])?;
        }
        Ok(())
    }

    /// Rewrite the meta page (page 0) in place.
    fn write_meta(&self, data: &[u8]) -> io::Result<()>;

    /// Read the meta page into `buf` (must be [`PAGE_SIZE`] bytes).
    fn read_meta(&self, buf: &mut [u8]) -> io::Result<()>;

    /// Total pages allocated so far (meta page included).
    fn page_count(&self) -> u64;

    /// Flush buffered writes to durable storage (no-op for [`MemPages`]).
    fn sync(&self) -> io::Result<()>;

    /// Short label for summaries and traces: `"paged-mem"` or `"paged"`.
    fn label(&self) -> &'static str;
}

/// In-memory page array: the paged backend's accounting and layout with no
/// filesystem underneath. Used by the differential tests, and available
/// via `COLORIST_BACKEND=paged-mem`.
#[derive(Debug, Default)]
pub struct MemPages {
    inner: Mutex<MemInner>,
}

#[derive(Debug, Default)]
struct MemInner {
    meta: Vec<u8>,
    /// Data pages, contiguous; index 0 here is page id 1.
    data: Vec<u8>,
}

impl MemPages {
    /// A fresh, empty page array.
    pub fn new() -> Self {
        Self::default()
    }
}

impl StorageBackend for MemPages {
    fn reserve(&self, pages: u64) -> io::Result<PageId> {
        let mut inner = self.inner.lock().unwrap();
        let first = 1 + (inner.data.len() / PAGE_SIZE) as u64;
        let new_len = inner.data.len() + pages as usize * PAGE_SIZE;
        inner.data.resize(new_len, 0);
        Ok(first)
    }

    fn write_pages(&self, first: PageId, data: &[u8]) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap();
        let lo = (first - 1) as usize * PAGE_SIZE;
        if lo + data.len() > inner.data.len() {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "write past reservation"));
        }
        inner.data[lo..lo + data.len()].copy_from_slice(data);
        Ok(())
    }

    fn read_page(&self, page: PageId, buf: &mut [u8]) -> io::Result<()> {
        let inner = self.inner.lock().unwrap();
        if page == 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "page 0 is the meta page"));
        }
        let lo = (page - 1) as usize * PAGE_SIZE;
        let slab = inner
            .data
            .get(lo..lo + PAGE_SIZE)
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "page out of range"))?;
        buf.copy_from_slice(slab);
        Ok(())
    }

    fn write_meta(&self, data: &[u8]) -> io::Result<()> {
        if data.len() > PAGE_SIZE {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "meta page overflow"));
        }
        let mut inner = self.inner.lock().unwrap();
        inner.meta.clear();
        inner.meta.extend_from_slice(data);
        inner.meta.resize(PAGE_SIZE, 0);
        Ok(())
    }

    fn read_meta(&self, buf: &mut [u8]) -> io::Result<()> {
        let inner = self.inner.lock().unwrap();
        if inner.meta.is_empty() {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "no meta page written"));
        }
        buf.copy_from_slice(&inner.meta);
        Ok(())
    }

    fn page_count(&self) -> u64 {
        1 + (self.inner.lock().unwrap().data.len() / PAGE_SIZE) as u64
    }

    fn sync(&self) -> io::Result<()> {
        Ok(())
    }

    fn label(&self) -> &'static str {
        "paged-mem"
    }
}

/// File-backed page array. The file is created in
/// [`page_dir`] (`COLORIST_PAGE_DIR` or the system temp dir) and removed
/// when the backend is dropped — the page file is a cache/commit target,
/// not a user artifact, unless created at an explicit path via
/// [`FilePages::create_at`] (the durability save/load path).
pub struct FilePages {
    inner: Mutex<FileInner>,
    path: PathBuf,
    delete_on_drop: bool,
}

struct FileInner {
    file: File,
    /// Next unreserved page id (page 0 = meta always exists).
    next_page: u64,
}

impl fmt::Debug for FilePages {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FilePages").field("path", &self.path).finish_non_exhaustive()
    }
}

/// Directory page files live in: `COLORIST_PAGE_DIR` if set, else the
/// system temp dir.
pub fn page_dir() -> PathBuf {
    std::env::var_os("COLORIST_PAGE_DIR").map(PathBuf::from).unwrap_or_else(std::env::temp_dir)
}

static FILE_SEQ: AtomicU64 = AtomicU64::new(0);

impl FilePages {
    /// Create a fresh page file with a unique name under [`page_dir`];
    /// deleted on drop.
    pub fn create_temp() -> io::Result<Self> {
        let seq = FILE_SEQ.fetch_add(1, Ordering::Relaxed);
        let name = format!("colorist-pages-{}-{}.bin", std::process::id(), seq);
        let mut f = Self::create_at(page_dir().join(name))?;
        f.delete_on_drop = true;
        Ok(f)
    }

    /// Create (truncating) a page file at `path`. Kept on drop — this is
    /// the explicit save path.
    pub fn create_at(path: impl Into<PathBuf>) -> io::Result<Self> {
        let path = path.into();
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(&path)?;
        file.set_len(PAGE_SIZE as u64)?; // meta page
        Ok(FilePages {
            inner: Mutex::new(FileInner { file, next_page: 1 }),
            path,
            delete_on_drop: false,
        })
    }

    /// Open an existing page file (as written by a prior flush) read-write.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<Self> {
        let path = path.into();
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        let len = file.metadata()?.len();
        if len < PAGE_SIZE as u64 || len % PAGE_SIZE as u64 != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{} is not a whole number of {PAGE_SIZE}-byte pages", path.display()),
            ));
        }
        let next_page = len / PAGE_SIZE as u64;
        Ok(FilePages {
            inner: Mutex::new(FileInner { file, next_page }),
            path,
            delete_on_drop: false,
        })
    }

    /// Where the pages live on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for FilePages {
    fn drop(&mut self) {
        if self.delete_on_drop {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

impl FileInner {
    fn read_at(&mut self, page: PageId, buf: &mut [u8]) -> io::Result<()> {
        self.file.seek(SeekFrom::Start(page * PAGE_SIZE as u64))?;
        self.file.read_exact(buf)
    }

    fn write_at(&mut self, page: PageId, data: &[u8]) -> io::Result<()> {
        self.file.seek(SeekFrom::Start(page * PAGE_SIZE as u64))?;
        self.file.write_all(data)
    }
}

impl StorageBackend for FilePages {
    fn reserve(&self, pages: u64) -> io::Result<PageId> {
        let mut inner = self.inner.lock().unwrap();
        let first = inner.next_page;
        inner.next_page += pages;
        let len = inner.next_page * PAGE_SIZE as u64;
        inner.file.set_len(len)?;
        Ok(first)
    }

    fn write_pages(&self, first: PageId, data: &[u8]) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap();
        if first == 0 || first + pages_for(data.len() as u64) > inner.next_page {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "write past reservation"));
        }
        inner.write_at(first, data)
    }

    fn read_page(&self, page: PageId, buf: &mut [u8]) -> io::Result<()> {
        if page == 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "page 0 is the meta page"));
        }
        self.inner.lock().unwrap().read_at(page, buf)
    }

    fn write_meta(&self, data: &[u8]) -> io::Result<()> {
        if data.len() > PAGE_SIZE {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "meta page overflow"));
        }
        let mut padded = data.to_vec();
        padded.resize(PAGE_SIZE, 0);
        self.inner.lock().unwrap().write_at(0, &padded)
    }

    fn read_meta(&self, buf: &mut [u8]) -> io::Result<()> {
        self.inner.lock().unwrap().read_at(0, buf)
    }

    fn page_count(&self) -> u64 {
        self.inner.lock().unwrap().next_page
    }

    fn sync(&self) -> io::Result<()> {
        self.inner.lock().unwrap().file.sync_data()
    }

    fn label(&self) -> &'static str {
        "paged"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(backend: &dyn StorageBackend) {
        let first = backend.reserve(3).unwrap();
        let mut data = vec![0u8; 2 * PAGE_SIZE + 100];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        backend.write_pages(first, &data).unwrap();
        backend.write_meta(b"meta!").unwrap();

        let mut buf = vec![0u8; PAGE_SIZE];
        backend.read_page(first + 1, &mut buf).unwrap();
        assert_eq!(&buf[..], &data[PAGE_SIZE..2 * PAGE_SIZE]);
        // the final page is zero-padded
        backend.read_page(first + 2, &mut buf).unwrap();
        assert_eq!(&buf[..100], &data[2 * PAGE_SIZE..]);
        assert!(buf[100..].iter().all(|&b| b == 0));

        let mut scanned = Vec::new();
        backend.scan_pages(first, 3, &mut scanned).unwrap();
        assert_eq!(&scanned[..data.len()], &data[..]);

        backend.read_meta(&mut buf).unwrap();
        assert_eq!(&buf[..5], b"meta!");
        assert!(backend.read_page(0, &mut buf).is_err(), "page 0 is reserved");
        assert_eq!(backend.page_count(), first + 3);
        backend.sync().unwrap();
    }

    #[test]
    fn mem_pages_roundtrip() {
        roundtrip(&MemPages::new());
    }

    #[test]
    fn file_pages_roundtrip_and_cleanup() {
        let backend = FilePages::create_temp().unwrap();
        let path = backend.path().to_path_buf();
        roundtrip(&backend);
        assert!(path.exists());
        drop(backend);
        assert!(!path.exists(), "temp page file must be deleted on drop");
    }

    #[test]
    fn file_pages_reopen_preserves_pages() {
        let dir = page_dir();
        let path = dir.join(format!("colorist-pages-test-{}.bin", std::process::id()));
        {
            let backend = FilePages::create_at(&path).unwrap();
            let first = backend.reserve(1).unwrap();
            backend.write_pages(first, b"hello").unwrap();
            backend.write_meta(b"m").unwrap();
            backend.sync().unwrap();
        }
        {
            let backend = FilePages::open(&path).unwrap();
            assert_eq!(backend.page_count(), 2);
            let mut buf = vec![0u8; PAGE_SIZE];
            backend.read_page(1, &mut buf).unwrap();
            assert_eq!(&buf[..5], b"hello");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn pages_for_rounds_up() {
        assert_eq!(pages_for(0), 0);
        assert_eq!(pages_for(1), 1);
        assert_eq!(pages_for(PAGE_SIZE as u64), 1);
        assert_eq!(pages_for(PAGE_SIZE as u64 + 1), 2);
    }
}

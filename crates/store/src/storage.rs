//! The paged storage layer behind [`Database`]: serialized segments, the
//! segment directory, commit/write-back, and per-query storage contexts.
//!
//! DESIGN.md §14 describes the model in full. In short: a database may be
//! *attached* to a [`StorageBackend`] ([`Database::attach_paged`]), at
//! which point every stored structure is serialized into a **segment** — a
//! contiguous run of 8 KB pages — and a **segment directory** maps each
//! segment to its page range. The in-memory structures remain the working
//! representation (a deserialization cache over the pages, the way an
//! in-memory TIMBER buffer pool would hold every hot page); the paged
//! layer adds
//!
//! * a **commit protocol**: mutators mark the segments they touch dirty,
//!   and every commit point (`execute_update`, `UpdateBatch::apply`,
//!   attach) re-serializes exactly the dirty segments, appends them with
//!   the new directory in one reserved page range — one backend
//!   transaction — and repoints the meta page; `page_writes` counts the
//!   pages laid down;
//! * **page accounting for reads**: each query runs with a
//!   [`StorageCtx`] holding its own cold [`BufferPool`], and the executor
//!   reports every record it reads to the context, which resolves the
//!   record's row to a page and charges `page_reads`/`pool_hits`/
//!   `pool_evictions` through the pool — deterministically, because the
//!   directory is immutable for the duration of a query;
//! * **durability**: [`Database::save_paged`] flushes everything to a
//!   named page file and [`Database::load_paged`] reconstructs a database
//!   from one, rebuilding the derived structures (per-tree indexes,
//!   extents, reverse links are stored; statistics are rebuilt — the
//!   maintenance invariant says a from-scratch build equals the
//!   maintained catalog).
//!
//! Append-only paging is what keeps copy-on-write cloning sound: a flush
//! writes fresh pages and swaps only the flushing database's directory
//! `Arc`, so clones and [`crate::database::Snapshot`]s keep reading the
//! exact pages their directory named when they were taken.

use crate::database::{
    placement_occ_counts, rebuild_indexes_into, ColorTree, Database, Element, ElementId, OccId,
    Occurrence, TOMBSTONE,
};
use crate::index::{IndexEntry, ValueIndex};
use crate::metrics::Metrics;
use crate::page::{pages_for, FilePages, MemPages, PageId, StorageBackend, PAGE_SIZE};
use crate::pool::{BufferPool, PoolConfig};
use crate::statistics::Statistics;
use crate::value::{Interner, Value, ValueKey};
use colorist_er::NodeId;
use colorist_mct::{ColorId, MctSchema, PlacementId};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::io;
use std::path::Path;
use std::sync::Arc;

/// Magic bytes opening the meta page.
const MAGIC: &[u8; 8] = b"CLRPAGE1";
/// On-page format version.
const FORMAT_VERSION: u32 = 1;

/// Serialized record size of one [`Occurrence`] (element, placement,
/// parent, start, end as `u32`; level as `u16`).
const REC_OCC: u64 = 22;
/// Serialized record size of one [`IndexEntry`] (node, attr as `u32`; key
/// as tag + 8 bytes; element as `u32`).
const REC_POSTING: u64 = 21;
/// Serialized record size of one ordinal or link slot (`u32`).
const REC_SLOT: u64 = 4;

/// One serialized stored structure, keyed for dirty tracking and the
/// directory. Trees are per color; everything else is global.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum SegId {
    /// All stored elements (canonicals and copies), row = `ElementId`.
    Elements,
    /// The append-only ordinal index, rows grouped per node
    /// (`SegmentDirectory::ordinal_bases`).
    Ordinals,
    /// The sorted value index, row = posting position.
    Postings,
    /// The link table, rows grouped per edge
    /// (`SegmentDirectory::link_bases`).
    Links,
    /// The reverse link lists (not derivable from [`SegId::Links`] once
    /// links have been killed: a kill blanks the participant but the
    /// reverse list keeps the dead relationship ordinal).
    RevLinks,
    /// The text symbol table, in symbol order.
    Symbols,
    /// One color's occurrence tree, row = `OccId`.
    Tree(u16),
}

/// Where one segment lives: its first page, its exact byte length, its row
/// count, and a checksum over the serialized bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SegEntry {
    pub(crate) first_page: PageId,
    pub(crate) bytes: u64,
    pub(crate) rows: u64,
    pub(crate) checksum: u64,
}

/// The segment directory one flush publishes: segment locations plus the
/// per-node/per-edge row bases that map `(node, ordinal)` and
/// `(edge, rel_ordinal)` to rows of the flat slot segments.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct SegmentDirectory {
    segs: BTreeMap<SegId, SegEntry>,
    /// Row of node `n`'s first slot in [`SegId::Ordinals`].
    ordinal_bases: Vec<u64>,
    /// Row of edge `e`'s first slot in [`SegId::Links`].
    link_bases: Vec<u64>,
}

impl SegmentDirectory {
    fn entry(&self, seg: SegId) -> Option<&SegEntry> {
        self.segs.get(&seg)
    }
}

/// How a [`Database`] is backed: the default pure heap, or attached to a
/// paged backend.
#[derive(Debug, Clone, Default)]
pub(crate) enum Storage {
    /// Purely in-memory — no pages, page counters stay zero.
    #[default]
    Heap,
    /// Attached to a paged backend.
    Paged(PagedState),
}

/// The paged attachment one database (or clone) carries.
#[derive(Debug, Clone)]
pub(crate) struct PagedState {
    backend: Arc<dyn StorageBackend>,
    dir: Arc<SegmentDirectory>,
    dirty: BTreeSet<SegId>,
    pool: PoolConfig,
}

impl Storage {
    /// Record that a stored structure changed since the last flush.
    /// A no-op on the heap backend.
    pub(crate) fn mark(&mut self, seg: SegId) {
        if let Storage::Paged(s) = self {
            s.dirty.insert(seg);
        }
    }
}

/// What a flush laid down, for `page_writes` accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlushReport {
    /// Pages written: dirty segment pages + directory pages + the meta
    /// page. Zero when nothing was dirty (or the database is heap-backed).
    pub pages_written: u64,
}

// ---------------------------------------------------------------------------
// byte-level helpers

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn corrupt(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

struct Cur<'a> {
    b: &'a [u8],
    p: usize,
}

impl<'a> Cur<'a> {
    fn new(b: &'a [u8]) -> Self {
        Cur { b, p: 0 }
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let s = self.b.get(self.p..self.p + n).ok_or_else(|| corrupt("truncated segment"))?;
        self.p += n;
        Ok(s)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> io::Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

// ---------------------------------------------------------------------------
// segment encode/decode

fn encode_value(out: &mut Vec<u8>, v: &Value, interner: &Interner) {
    match v {
        Value::Int(i) => {
            out.push(0);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(1);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Text(s) => {
            out.push(2);
            let sym = interner.get(s).expect("stored text is interned by every write path");
            put_u32(out, sym);
        }
    }
}

fn decode_value(cur: &mut Cur, interner: &Interner) -> io::Result<Value> {
    match cur.u8()? {
        0 => Ok(Value::Int(i64::from_le_bytes(cur.take(8)?.try_into().unwrap()))),
        1 => Ok(Value::Float(f64::from_bits(cur.u64()?))),
        2 => {
            let sym = cur.u32()?;
            if sym as usize >= interner.len() {
                return Err(corrupt("symbol out of range"));
            }
            Ok(Value::Text(interner.resolve(sym).to_owned()))
        }
        t => Err(corrupt(format!("unknown value tag {t}"))),
    }
}

fn encode_elements(elements: &[Element], interner: &Interner) -> (Vec<u8>, u64) {
    let mut out = Vec::new();
    for el in elements {
        put_u32(&mut out, el.node.0);
        put_u32(&mut out, el.ordinal);
        put_u32(&mut out, el.canonical.0);
        put_u16(&mut out, el.attrs.len() as u16);
        for v in &el.attrs {
            encode_value(&mut out, v, interner);
        }
    }
    (out, elements.len() as u64)
}

fn decode_elements(bytes: &[u8], rows: u64, interner: &Interner) -> io::Result<Vec<Element>> {
    let mut cur = Cur::new(bytes);
    let mut out = Vec::with_capacity(rows as usize);
    for _ in 0..rows {
        let node = NodeId(cur.u32()?);
        let ordinal = cur.u32()?;
        let canonical = ElementId(cur.u32()?);
        let arity = cur.u16()? as usize;
        let mut attrs = Vec::with_capacity(arity);
        for _ in 0..arity {
            attrs.push(decode_value(&mut cur, interner)?);
        }
        out.push(Element { node, ordinal, canonical, attrs });
    }
    Ok(out)
}

fn encode_tree(occs: &[Occurrence]) -> (Vec<u8>, u64) {
    let mut out = Vec::with_capacity(occs.len() * REC_OCC as usize);
    for o in occs {
        put_u32(&mut out, o.element.0);
        put_u32(&mut out, o.placement.0);
        put_u32(&mut out, o.parent.map_or(u32::MAX, |p| p.0));
        put_u32(&mut out, o.start);
        put_u32(&mut out, o.end);
        put_u16(&mut out, o.level);
    }
    (out, occs.len() as u64)
}

fn decode_tree(bytes: &[u8], rows: u64) -> io::Result<Vec<Occurrence>> {
    let mut cur = Cur::new(bytes);
    let mut out = Vec::with_capacity(rows as usize);
    for _ in 0..rows {
        let element = ElementId(cur.u32()?);
        let placement = PlacementId(cur.u32()?);
        let parent = match cur.u32()? {
            u32::MAX => None,
            p => Some(OccId(p)),
        };
        let (start, end, level) = (cur.u32()?, cur.u32()?, cur.u16()?);
        out.push(Occurrence { element, placement, parent, start, end, level });
    }
    Ok(out)
}

/// Flat per-node (or per-edge) `u32` slot runs, plus the row base of each
/// run.
fn encode_slots(groups: &[Vec<impl SlotWord>]) -> (Vec<u8>, Vec<u64>, u64) {
    let mut out = Vec::new();
    let mut bases = Vec::with_capacity(groups.len());
    let mut row = 0u64;
    for g in groups {
        bases.push(row);
        row += g.len() as u64;
        for s in g {
            put_u32(&mut out, s.word());
        }
    }
    (out, bases, row)
}

fn decode_slots<T: SlotWord>(bytes: &[u8], bases: &[u64], rows: u64) -> io::Result<Vec<Vec<T>>> {
    let mut cur = Cur::new(bytes);
    let mut out = Vec::with_capacity(bases.len());
    for (i, &base) in bases.iter().enumerate() {
        let end = bases.get(i + 1).copied().unwrap_or(rows);
        let mut g = Vec::with_capacity((end - base) as usize);
        for _ in base..end {
            g.push(T::from_word(cur.u32()?));
        }
        out.push(g);
    }
    Ok(out)
}

/// The two flat slot segments store `u32` words: ordinal slots hold
/// `ElementId`s (with [`TOMBSTONE`] for deleted), link slots hold
/// participant ordinals (with `u32::MAX` for killed).
trait SlotWord: Sized {
    fn word(&self) -> u32;
    fn from_word(w: u32) -> Self;
}

impl SlotWord for ElementId {
    fn word(&self) -> u32 {
        self.0
    }
    fn from_word(w: u32) -> Self {
        ElementId(w)
    }
}

impl SlotWord for u32 {
    fn word(&self) -> u32 {
        *self
    }
    fn from_word(w: u32) -> Self {
        w
    }
}

fn encode_rev_links(rev: &[Vec<Vec<u32>>]) -> (Vec<u8>, u64) {
    let mut out = Vec::new();
    let mut rows = 0u64;
    put_u32(&mut out, rev.len() as u32);
    for per_edge in rev {
        put_u32(&mut out, per_edge.len() as u32);
        for per_participant in per_edge {
            put_u32(&mut out, per_participant.len() as u32);
            for &ro in per_participant {
                put_u32(&mut out, ro);
                rows += 1;
            }
        }
    }
    (out, rows)
}

fn decode_rev_links(bytes: &[u8]) -> io::Result<Vec<Vec<Vec<u32>>>> {
    let mut cur = Cur::new(bytes);
    let edges = cur.u32()? as usize;
    let mut out = Vec::with_capacity(edges);
    for _ in 0..edges {
        let participants = cur.u32()? as usize;
        let mut per_edge = Vec::with_capacity(participants);
        for _ in 0..participants {
            let n = cur.u32()? as usize;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(cur.u32()?);
            }
            per_edge.push(v);
        }
        out.push(per_edge);
    }
    Ok(out)
}

fn encode_key(out: &mut Vec<u8>, k: ValueKey) {
    match k {
        ValueKey::Num(i) => {
            out.push(0);
            out.extend_from_slice(&(i as u64).to_le_bytes());
        }
        ValueKey::Bits(b) => {
            out.push(1);
            out.extend_from_slice(&b.to_le_bytes());
        }
        ValueKey::Sym(s) => {
            out.push(2);
            out.extend_from_slice(&(s as u64).to_le_bytes());
        }
    }
}

fn decode_key(cur: &mut Cur) -> io::Result<ValueKey> {
    let tag = cur.u8()?;
    let payload = cur.u64()?;
    match tag {
        0 => Ok(ValueKey::Num(payload as i64)),
        1 => Ok(ValueKey::Bits(payload)),
        2 => Ok(ValueKey::Sym(payload as u32)),
        t => Err(corrupt(format!("unknown key tag {t}"))),
    }
}

fn encode_postings(entries: &[IndexEntry]) -> (Vec<u8>, u64) {
    let mut out = Vec::with_capacity(entries.len() * REC_POSTING as usize);
    for e in entries {
        put_u32(&mut out, e.node.0);
        put_u32(&mut out, e.attr);
        encode_key(&mut out, e.key);
        put_u32(&mut out, e.element.0);
    }
    (out, entries.len() as u64)
}

fn decode_postings(bytes: &[u8], rows: u64) -> io::Result<Vec<IndexEntry>> {
    let mut cur = Cur::new(bytes);
    let mut out = Vec::with_capacity(rows as usize);
    for _ in 0..rows {
        let node = NodeId(cur.u32()?);
        let attr = cur.u32()?;
        let key = decode_key(&mut cur)?;
        let element = ElementId(cur.u32()?);
        out.push(IndexEntry { node, attr, key, element });
    }
    Ok(out)
}

fn encode_symbols(interner: &Interner) -> (Vec<u8>, u64) {
    let mut out = Vec::new();
    for sym in 0..interner.len() as u32 {
        let s = interner.resolve(sym);
        put_u32(&mut out, s.len() as u32);
        out.extend_from_slice(s.as_bytes());
    }
    (out, interner.len() as u64)
}

fn decode_symbols(bytes: &[u8], rows: u64) -> io::Result<Interner> {
    let mut cur = Cur::new(bytes);
    let mut strings = Vec::with_capacity(rows as usize);
    for _ in 0..rows {
        let n = cur.u32()? as usize;
        let s = std::str::from_utf8(cur.take(n)?).map_err(|_| corrupt("non-UTF-8 symbol"))?;
        strings.push(s.to_owned());
    }
    Ok(Interner::from_strings(strings))
}

// ---------------------------------------------------------------------------
// directory + meta encode/decode

fn seg_tag(seg: SegId) -> (u8, u16) {
    match seg {
        SegId::Elements => (0, 0),
        SegId::Ordinals => (1, 0),
        SegId::Postings => (2, 0),
        SegId::Links => (3, 0),
        SegId::RevLinks => (4, 0),
        SegId::Symbols => (5, 0),
        SegId::Tree(c) => (6, c),
    }
}

fn seg_from_tag(tag: u8, color: u16) -> io::Result<SegId> {
    Ok(match tag {
        0 => SegId::Elements,
        1 => SegId::Ordinals,
        2 => SegId::Postings,
        3 => SegId::Links,
        4 => SegId::RevLinks,
        5 => SegId::Symbols,
        6 => SegId::Tree(color),
        t => return Err(corrupt(format!("unknown segment tag {t}"))),
    })
}

fn encode_dir(dir: &SegmentDirectory) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, dir.segs.len() as u32);
    for (&seg, e) in &dir.segs {
        let (tag, color) = seg_tag(seg);
        out.push(tag);
        put_u16(&mut out, color);
        put_u64(&mut out, e.first_page);
        put_u64(&mut out, e.bytes);
        put_u64(&mut out, e.rows);
        put_u64(&mut out, e.checksum);
    }
    for bases in [&dir.ordinal_bases, &dir.link_bases] {
        put_u32(&mut out, bases.len() as u32);
        for &b in bases {
            put_u64(&mut out, b);
        }
    }
    out
}

fn decode_dir(bytes: &[u8]) -> io::Result<SegmentDirectory> {
    let mut cur = Cur::new(bytes);
    let n = cur.u32()? as usize;
    let mut segs = BTreeMap::new();
    for _ in 0..n {
        let tag = cur.u8()?;
        let color = cur.u16()?;
        let seg = seg_from_tag(tag, color)?;
        let entry = SegEntry {
            first_page: cur.u64()?,
            bytes: cur.u64()?,
            rows: cur.u64()?,
            checksum: cur.u64()?,
        };
        segs.insert(seg, entry);
    }
    let mut bases = [Vec::new(), Vec::new()];
    for b in &mut bases {
        let n = cur.u32()? as usize;
        for _ in 0..n {
            b.push(cur.u64()?);
        }
    }
    let [ordinal_bases, link_bases] = bases;
    Ok(SegmentDirectory { segs, ordinal_bases, link_bases })
}

struct Meta {
    epoch: u64,
    dir_first: PageId,
    dir_bytes: u64,
    dir_checksum: u64,
}

fn encode_meta(m: &Meta) -> Vec<u8> {
    let mut out = Vec::with_capacity(44);
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, FORMAT_VERSION);
    put_u64(&mut out, m.epoch);
    put_u64(&mut out, m.dir_first);
    put_u64(&mut out, m.dir_bytes);
    put_u64(&mut out, m.dir_checksum);
    out
}

fn decode_meta(page: &[u8]) -> io::Result<Meta> {
    let mut cur = Cur::new(page);
    if cur.take(8)? != MAGIC {
        return Err(corrupt("not a colorist page file (bad magic)"));
    }
    let version = cur.u32()?;
    if version != FORMAT_VERSION {
        return Err(corrupt(format!("unsupported page format version {version}")));
    }
    Ok(Meta {
        epoch: cur.u64()?,
        dir_first: cur.u64()?,
        dir_bytes: cur.u64()?,
        dir_checksum: cur.u64()?,
    })
}

// ---------------------------------------------------------------------------
// attach / flush / save / load

impl Database {
    /// Whether this database is attached to a paged backend.
    pub fn is_paged(&self) -> bool {
        matches!(self.storage, Storage::Paged(_))
    }

    /// The backend label for summaries: `"mem"` when heap-backed, else the
    /// backend's own label (`"paged"` / `"paged-mem"`).
    pub fn storage_label(&self) -> &'static str {
        match &self.storage {
            Storage::Heap => "mem",
            Storage::Paged(s) => s.backend.label(),
        }
    }

    /// The buffer-pool byte budget queries against this database run with
    /// (0 when heap-backed — there is no pool).
    pub fn storage_pool_bytes(&self) -> u64 {
        match &self.storage {
            Storage::Heap => 0,
            Storage::Paged(s) => s.pool.pool_bytes,
        }
    }

    /// Attach this database to a paged backend: every stored structure is
    /// serialized into segments and flushed (so the returned report counts
    /// the full database), and from here on every commit point writes
    /// dirty segments back through the backend. Queries executed against
    /// an attached database charge the `page_reads`/`pool_hits`/
    /// `pool_evictions` counters through a per-query buffer pool of
    /// `pool.pool_bytes` bytes.
    pub fn attach_paged(
        &mut self,
        backend: Arc<dyn StorageBackend>,
        pool: PoolConfig,
    ) -> io::Result<FlushReport> {
        let mut dirty: BTreeSet<SegId> = [
            SegId::Elements,
            SegId::Ordinals,
            SegId::Postings,
            SegId::Links,
            SegId::RevLinks,
            SegId::Symbols,
        ]
        .into_iter()
        .collect();
        for c in 0..self.colors.len() {
            dirty.insert(SegId::Tree(c as u16));
        }
        self.storage = Storage::Paged(PagedState {
            backend,
            dir: Arc::new(SegmentDirectory::default()),
            dirty,
            pool,
        });
        self.flush_storage()
    }

    /// Detach from the paged backend, reverting to the pure heap.
    pub fn detach_storage(&mut self) {
        self.storage = Storage::Heap;
    }

    /// Write every dirty segment back to the backend — the commit/
    /// write-back protocol of DESIGN.md §14. All dirty segments and the
    /// new directory go down in **one** reserved page range (one backend
    /// transaction), then the meta page is repointed and the backend
    /// synced. Returns the pages written for `page_writes` accounting;
    /// zero (and no I/O) when nothing is dirty or the database is
    /// heap-backed.
    pub fn flush_storage(&mut self) -> io::Result<FlushReport> {
        let (backend, old_dir, dirty) = match &self.storage {
            Storage::Paged(s) if !s.dirty.is_empty() => {
                (s.backend.clone(), s.dir.clone(), s.dirty.clone())
            }
            _ => return Ok(FlushReport::default()),
        };
        let mut new_dir = (*old_dir).clone();
        let mut chunks: Vec<(SegId, Vec<u8>, u64)> = Vec::with_capacity(dirty.len());
        for &seg in &dirty {
            let (bytes, rows) = match seg {
                SegId::Elements => encode_elements(&self.elements, &self.interner),
                SegId::Ordinals => {
                    let (b, bases, rows) = encode_slots(&self.by_ordinal);
                    new_dir.ordinal_bases = bases;
                    (b, rows)
                }
                SegId::Postings => encode_postings(self.value_index.entries()),
                SegId::Links => {
                    let (b, bases, rows) = encode_slots(&self.links);
                    new_dir.link_bases = bases;
                    (b, rows)
                }
                SegId::RevLinks => encode_rev_links(&self.rev_links),
                SegId::Symbols => encode_symbols(&self.interner),
                SegId::Tree(c) => encode_tree(self.colors[c as usize].occs()),
            };
            chunks.push((seg, bytes, rows));
        }
        for (seg, bytes, rows) in &chunks {
            new_dir.segs.insert(
                *seg,
                SegEntry {
                    first_page: 0, // assigned after the reservation below
                    bytes: bytes.len() as u64,
                    rows: *rows,
                    checksum: fnv1a64(bytes),
                },
            );
        }
        let seg_pages: u64 = chunks.iter().map(|(_, b, _)| pages_for(b.len() as u64)).sum();
        let dir_len = encode_dir(&new_dir).len() as u64; // layout-independent length
        let total = seg_pages + pages_for(dir_len);
        let first = backend.reserve(total)?;
        let mut next = first;
        let mut buf = Vec::with_capacity(total as usize * PAGE_SIZE);
        for (seg, bytes, _) in &chunks {
            new_dir.segs.get_mut(seg).expect("entry inserted above").first_page = next;
            next += pages_for(bytes.len() as u64);
            buf.extend_from_slice(bytes);
            buf.resize(buf.len().div_ceil(PAGE_SIZE) * PAGE_SIZE, 0);
        }
        let dir_first = next;
        let dir_bytes = encode_dir(&new_dir);
        debug_assert_eq!(dir_bytes.len() as u64, dir_len);
        buf.extend_from_slice(&dir_bytes);
        buf.resize(buf.len().div_ceil(PAGE_SIZE) * PAGE_SIZE, 0);
        backend.write_pages(first, &buf)?;
        backend.write_meta(&encode_meta(&Meta {
            epoch: self.epoch(),
            dir_first,
            dir_bytes: dir_bytes.len() as u64,
            dir_checksum: fnv1a64(&dir_bytes),
        }))?;
        backend.sync()?;
        if let Storage::Paged(s) = &mut self.storage {
            s.dir = Arc::new(new_dir);
            s.dirty.clear();
        }
        Ok(FlushReport { pages_written: total + 1 })
    }

    /// Save this database durably to a page file at `path` (kept on
    /// drop, unlike the benchmark knob's temp files), leaving the
    /// database attached to it. [`Database::load_paged`] reconstructs an
    /// equal database from the file.
    pub fn save_paged(
        &mut self,
        path: impl AsRef<Path>,
        pool: PoolConfig,
    ) -> io::Result<FlushReport> {
        let backend = Arc::new(FilePages::create_at(path.as_ref())?);
        self.attach_paged(backend, pool)
    }

    /// Load a database from a page file written by
    /// [`Database::save_paged`]. The page file stores the data, not the
    /// schema — callers supply the schema the file was saved under (the
    /// way TIMBER kept the DTD out of band). Verifies the meta page and
    /// every segment checksum, decodes the stored segments, and rebuilds
    /// the derived structures; the result satisfies
    /// `same_state(original, true)` for a database whose dispatch mode is
    /// the default.
    pub fn load_paged(
        path: impl AsRef<Path>,
        schema: MctSchema,
        pool: PoolConfig,
    ) -> io::Result<Database> {
        Database::load_from_backend(Arc::new(FilePages::open(path.as_ref())?), schema, pool)
    }

    /// [`Database::load_paged`] over an already-open backend (any
    /// [`StorageBackend`], e.g. a [`MemPages`] another database flushed
    /// to).
    pub fn load_from_backend(
        backend: Arc<dyn StorageBackend>,
        schema: MctSchema,
        pool: PoolConfig,
    ) -> io::Result<Database> {
        let mut meta_page = vec![0u8; PAGE_SIZE];
        backend.read_meta(&mut meta_page)?;
        let meta = decode_meta(&meta_page)?;
        let mut raw = Vec::new();
        backend.scan_pages(meta.dir_first, pages_for(meta.dir_bytes), &mut raw)?;
        raw.truncate(meta.dir_bytes as usize);
        if fnv1a64(&raw) != meta.dir_checksum {
            return Err(corrupt("segment directory checksum mismatch"));
        }
        let dir = decode_dir(&raw)?;
        let read_seg = |seg: SegId| -> io::Result<(Vec<u8>, u64)> {
            let Some(e) = dir.entry(seg) else { return Ok((Vec::new(), 0)) };
            let mut raw = Vec::new();
            backend.scan_pages(e.first_page, pages_for(e.bytes), &mut raw)?;
            raw.truncate(e.bytes as usize);
            if fnv1a64(&raw) != e.checksum {
                return Err(corrupt(format!("checksum mismatch in segment {seg:?}")));
            }
            Ok((raw, e.rows))
        };
        let (b, rows) = read_seg(SegId::Symbols)?;
        let interner = decode_symbols(&b, rows)?;
        let (b, rows) = read_seg(SegId::Elements)?;
        let elements = decode_elements(&b, rows, &interner)?;
        let (b, rows) = read_seg(SegId::Ordinals)?;
        let by_ordinal: Vec<Vec<ElementId>> = decode_slots(&b, &dir.ordinal_bases, rows)?;
        let (b, rows) = read_seg(SegId::Links)?;
        let links: Vec<Vec<u32>> = decode_slots(&b, &dir.link_bases, rows)?;
        let (b, _) = read_seg(SegId::RevLinks)?;
        let rev_links = decode_rev_links(&b)?;
        let (b, rows) = read_seg(SegId::Postings)?;
        let value_index = ValueIndex::from_entries(decode_postings(&b, rows)?);
        let mut colors = Vec::with_capacity(schema.color_count());
        let mut logical_occs = Vec::with_capacity(schema.color_count());
        for c in 0..schema.color_count() {
            let (b, rows) = read_seg(SegId::Tree(c as u16))?;
            let mut tree = ColorTree::from_occs(decode_tree(&b, rows)?);
            let mut lo = HashMap::new();
            rebuild_indexes_into(&mut tree, ColorId(c as u16), &elements, &mut lo);
            colors.push(tree);
            logical_occs.push(lo);
        }
        // extents are the live ordinal slots; per node they are already in
        // ascending id order (ordinals and ids both grow with insertion)
        let extents: Vec<Vec<ElementId>> = by_ordinal
            .iter()
            .map(|slots| {
                let mut live: Vec<ElementId> =
                    slots.iter().copied().filter(|&e| e != TOMBSTONE).collect();
                live.sort_unstable();
                live
            })
            .collect();
        // statistics are rebuilt, not stored: the maintenance choke points
        // guarantee the catalog never drifts from a from-scratch build
        let mut arity: Vec<Option<usize>> = vec![None; extents.len()];
        for el in &elements {
            let slot = &mut arity[el.node.idx()];
            if slot.is_none() {
                *slot = Some(el.attrs.len());
            }
        }
        let extent_rows = extents.iter().map(|e| e.len() as u64).collect();
        let statistics = Statistics::build(
            extents.len(),
            |n| arity[n].unwrap_or(0),
            extent_rows,
            placement_occ_counts(&schema, &colors),
            &value_index,
            &interner,
        );
        Ok(Database {
            schema,
            elements: Arc::new(elements),
            colors: Arc::new(colors),
            extents: Arc::new(extents),
            by_ordinal: Arc::new(by_ordinal),
            logical_occs: Arc::new(logical_occs),
            links: Arc::new(links),
            rev_links: Arc::new(rev_links),
            interner: Arc::new(interner),
            value_index: Arc::new(value_index),
            statistics: Arc::new(statistics),
            dispatch: Default::default(),
            epoch: meta.epoch,
            storage: Storage::Paged(PagedState {
                backend,
                dir: Arc::new(dir),
                dirty: BTreeSet::new(),
                pool,
            }),
        })
    }

    /// The storage context queries against this database run with: a
    /// heap-backed database gets the free no-op context; a paged database
    /// gets the directory plus a fresh, cold buffer pool at the attached
    /// byte budget. Per-query pools keep the page counters deterministic
    /// under any worker count.
    pub fn storage_ctx(&self) -> StorageCtx {
        match &self.storage {
            Storage::Heap => StorageCtx { inner: None },
            Storage::Paged(s) => StorageCtx {
                inner: Some(PagedCtx {
                    backend: s.backend.clone(),
                    dir: s.dir.clone(),
                    pool: BufferPool::new(s.pool),
                }),
            },
        }
    }
}

// ---------------------------------------------------------------------------
// per-query storage context

/// Per-query page accounting: resolves the records the executor reads to
/// pages of the attached backend and charges them through a private
/// buffer pool. For a heap-backed database every method is a no-op, so
/// the executor calls them unconditionally.
///
/// Records mutated (or created) since the last flush live past the end of
/// their flushed segment; touches beyond a segment's flushed length are
/// silently skipped — those records exist only in the working
/// representation until the next commit writes them back.
#[derive(Debug)]
pub struct StorageCtx {
    inner: Option<PagedCtx>,
}

#[derive(Debug)]
struct PagedCtx {
    backend: Arc<dyn StorageBackend>,
    dir: Arc<SegmentDirectory>,
    pool: BufferPool,
}

impl StorageCtx {
    /// The no-op context of a heap-backed database.
    pub fn heap() -> StorageCtx {
        StorageCtx { inner: None }
    }

    /// Whether this context does any accounting.
    pub fn is_paged(&self) -> bool {
        self.inner.is_some()
    }

    /// Touch a run of fixed-size rows of `seg`. Consecutive rows landing
    /// on the page just accessed are absorbed (a scan reads each page
    /// once); every page transition is one pool access.
    fn touch_rows(
        &mut self,
        seg: SegId,
        rec: u64,
        rows: impl IntoIterator<Item = u64>,
        m: &mut Metrics,
    ) {
        let Some(ctx) = &mut self.inner else { return };
        let Some(e) = ctx.dir.entry(seg) else { return };
        let mut last = PageId::MAX;
        for row in rows {
            let off = row * rec;
            if off >= e.bytes {
                continue; // newer than the flushed segment: heap-only
            }
            let page = e.first_page + off / PAGE_SIZE as u64;
            if page != last {
                last = page;
                ctx.pool.access(page, &*ctx.backend, m).expect("paged backend read failed");
            }
        }
    }

    /// Touch the occurrence records behind `occs` in color `c`.
    pub fn touch_occs(&mut self, c: ColorId, occs: &[OccId], m: &mut Metrics) {
        if self.inner.is_some() {
            self.touch_rows(SegId::Tree(c.0), REC_OCC, occs.iter().map(|o| o.idx() as u64), m);
        }
    }

    /// Touch one occurrence record.
    pub fn touch_occ(&mut self, c: ColorId, o: OccId, m: &mut Metrics) {
        self.touch_rows(SegId::Tree(c.0), REC_OCC, std::iter::once(o.idx() as u64), m);
    }

    /// Touch the element records behind `elems` (attribute reads).
    /// Element records are variable-size; rows map to byte offsets at the
    /// segment's mean record size, which keeps the mapping deterministic
    /// without a per-row offset table.
    pub fn touch_elements(&mut self, elems: &[ElementId], m: &mut Metrics) {
        if self.inner.is_some() {
            for &e in elems {
                self.touch_element(e, m);
            }
        }
    }

    /// Touch one element record.
    pub fn touch_element(&mut self, e: ElementId, m: &mut Metrics) {
        let Some(ctx) = &mut self.inner else { return };
        let Some(entry) = ctx.dir.entry(SegId::Elements) else { return };
        if entry.rows == 0 || e.idx() as u64 >= entry.rows {
            return;
        }
        let off = (e.idx() as u128 * entry.bytes as u128 / entry.rows as u128) as u64;
        let page = entry.first_page + off / PAGE_SIZE as u64;
        ctx.pool.access(page, &*ctx.backend, m).expect("paged backend read failed");
    }

    /// Touch a probed or scanned range of value-index postings. `slice`
    /// must be a sub-slice of `index.entries()` (as returned by
    /// `matching`/`of_attr`); its position within the index is its row
    /// range in the postings segment.
    pub fn touch_postings(&mut self, index: &ValueIndex, slice: &[IndexEntry], m: &mut Metrics) {
        if self.inner.is_none() || slice.is_empty() {
            return;
        }
        let base = index.entries().as_ptr() as usize;
        let row0 = (slice.as_ptr() as usize - base) / std::mem::size_of::<IndexEntry>();
        let rows = row0 as u64..row0 as u64 + slice.len() as u64;
        self.touch_rows(SegId::Postings, REC_POSTING, rows, m);
    }

    /// Touch one ordinal-index slot (an id→element probe).
    pub fn touch_ordinal(&mut self, node: NodeId, ordinal: u32, m: &mut Metrics) {
        let Some(ctx) = &self.inner else { return };
        let Some(&base) = ctx.dir.ordinal_bases.get(node.idx()) else { return };
        self.touch_rows(SegId::Ordinals, REC_SLOT, std::iter::once(base + ordinal as u64), m);
    }

    /// Touch one link-table slot (a parent-child adjacency probe).
    pub fn touch_link(&mut self, edge: colorist_er::EdgeId, rel_ordinal: u32, m: &mut Metrics) {
        let Some(ctx) = &self.inner else { return };
        let Some(&base) = ctx.dir.link_bases.get(edge.idx()) else { return };
        self.touch_rows(SegId::Links, REC_SLOT, std::iter::once(base + rel_ordinal as u64), m);
    }
}

// ---------------------------------------------------------------------------
// environment knobs

/// The backend selector: `COLORIST_BACKEND`, default `"mem"`. Recognized:
/// `"mem"` (heap), `"paged"` (file-backed pages under `COLORIST_PAGE_DIR`
/// or the system temp dir), `"paged-mem"` (in-memory pages).
pub fn env_backend() -> String {
    std::env::var("COLORIST_BACKEND").unwrap_or_else(|_| "mem".to_string())
}

/// The pool budget: `COLORIST_POOL_BYTES`, default
/// [`crate::pool::DEFAULT_POOL_BYTES`].
pub fn env_pool_bytes() -> u64 {
    std::env::var("COLORIST_POOL_BYTES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(crate::pool::DEFAULT_POOL_BYTES)
}

/// Attach `db` per the `COLORIST_BACKEND`/`COLORIST_POOL_BYTES`
/// environment (the `--backend`/`--pool-bytes` CLI knobs set these).
/// Returns whether an attachment happened; `"mem"` (the default) leaves
/// the database heap-backed.
pub fn attach_from_env(db: &mut Database) -> io::Result<bool> {
    let pool = PoolConfig { pool_bytes: env_pool_bytes() };
    match env_backend().as_str() {
        "mem" => Ok(false),
        "paged" => {
            db.attach_paged(Arc::new(FilePages::create_temp()?), pool)?;
            Ok(true)
        }
        "paged-mem" => {
            db.attach_paged(Arc::new(MemPages::new()), pool)?;
            Ok(true)
        }
        other => Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("unknown COLORIST_BACKEND {other:?} (expected mem, paged, or paged-mem)"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::DatabaseBuilder;
    use colorist_er::{Attribute, ErDiagram, ErGraph};

    fn tiny() -> (ErGraph, MctSchema) {
        let mut d = ErDiagram::new("t");
        d.add_entity("a", vec![Attribute::key("id")]).unwrap();
        d.add_entity("b", vec![Attribute::key("id"), Attribute::text("x")]).unwrap();
        d.add_rel_1m("r", "a", "b").unwrap();
        let g = ErGraph::from_diagram(&d).unwrap();
        let s = colorist_core::design(&g, colorist_core::Strategy::En).unwrap();
        (g, s)
    }

    fn build(g: &ErGraph, s: &MctSchema) -> Database {
        let a = g.node_by_name("a").unwrap();
        let b = g.node_by_name("b").unwrap();
        let r = g.node_by_name("r").unwrap();
        let c = ColorId(0);
        let pa = s.placements_of_in_color(a, c)[0];
        let pr = s.placements_of_in_color(r, c)[0];
        let pb = s.placements_of_in_color(b, c)[0];
        let mut bd = DatabaseBuilder::new(s.clone(), g.node_count());
        let ea0 = bd.add_canonical(a, vec![Value::Int(0)]);
        let _ea1 = bd.add_canonical(a, vec![Value::Int(1)]);
        let er0 = bd.add_canonical(r, vec![]);
        let er1 = bd.add_canonical(r, vec![]);
        let eb0 = bd.add_canonical(b, vec![Value::Int(0), Value::Text("u".into())]);
        let eb1 = bd.add_canonical(b, vec![Value::Int(1), Value::Text("v".into())]);
        let oa0 = bd.add_occurrence(c, ea0, pa, None);
        let or0 = bd.add_occurrence(c, er0, pr, Some(oa0));
        let or1 = bd.add_occurrence(c, er1, pr, Some(oa0));
        bd.add_occurrence(c, eb0, pb, Some(or0));
        bd.add_occurrence(c, eb1, pb, Some(or1));
        bd.finish()
    }

    #[test]
    fn attach_flush_load_roundtrip() {
        let (g, s) = tiny();
        let mut db = build(&g, &s);
        let backend = Arc::new(MemPages::new());
        let report = db.attach_paged(backend.clone(), PoolConfig::default()).unwrap();
        assert!(report.pages_written >= 2, "segments + directory + meta");
        assert_eq!(db.storage_label(), "paged-mem");
        let loaded =
            Database::load_from_backend(backend, s.clone(), PoolConfig::default()).unwrap();
        assert_eq!(loaded.same_state(&db, true), Ok(()));
        assert_eq!(loaded.check_integrity(), Ok(()));
    }

    #[test]
    fn mutations_flush_incrementally_and_reload() {
        let (g, s) = tiny();
        let mut db = build(&g, &s);
        let backend = Arc::new(MemPages::new());
        db.attach_paged(backend.clone(), PoolConfig::default()).unwrap();
        let full = backend.page_count();

        let b = g.node_by_name("b").unwrap();
        let eb0 = db.extent(b)[0];
        db.write_attr(eb0, 1, Value::Text("rewritten".into()));
        let report = db.flush_storage().unwrap();
        assert!(report.pages_written > 0);
        assert!(backend.page_count() > full, "flush appends, never overwrites");
        // an immediate second flush has nothing dirty
        assert_eq!(db.flush_storage().unwrap(), FlushReport::default());

        // deletes exercise tombstones, extent retraction, and relabels
        db.remove_element_occurrences(db.extent(b)[1]);
        // links and kills exercise the link/rev-link segments
        let e_ra = g.edge_ids().find(|&e| g.edge(e).rel == g.node_by_name("r").unwrap()).unwrap();
        db.push_link(e_ra, 0, 0);
        db.push_link(e_ra, 1, 0);
        db.kill_link(e_ra, 0);
        db.flush_storage().unwrap();

        let loaded = Database::load_from_backend(backend, s, PoolConfig::default()).unwrap();
        assert_eq!(loaded.same_state(&db, true), Ok(()));
        assert_eq!(loaded.check_integrity(), Ok(()));
    }

    #[test]
    fn save_and_load_via_page_file() {
        let (g, s) = tiny();
        let mut db = build(&g, &s);
        let path =
            crate::page::page_dir().join(format!("colorist-save-test-{}.bin", std::process::id()));
        db.save_paged(&path, PoolConfig::default()).unwrap();
        let loaded = Database::load_paged(&path, s, PoolConfig::default()).unwrap();
        assert_eq!(loaded.same_state(&db, true), Ok(()));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn storage_ctx_charges_only_page_counters() {
        let (g, s) = tiny();
        let mut db = build(&g, &s);
        // heap context: all no-ops
        let mut ctx = db.storage_ctx();
        let mut m = Metrics::default();
        ctx.touch_element(ElementId(0), &mut m);
        assert_eq!(m, Metrics::default());

        db.attach_paged(Arc::new(MemPages::new()), PoolConfig::default()).unwrap();
        let mut ctx = db.storage_ctx();
        assert!(ctx.is_paged());
        let c = ColorId(0);
        let occs: Vec<OccId> = (0..db.color(c).occs().len() as u32).map(OccId).collect();
        ctx.touch_occs(c, &occs, &mut m);
        ctx.touch_elements(&[ElementId(0), ElementId(1)], &mut m);
        let b = g.node_by_name("b").unwrap();
        let key = db.join_key(&Value::Int(0));
        ctx.touch_postings(db.value_index(), db.value_index().matching(b, 0, key), &mut m);
        ctx.touch_ordinal(b, 0, &mut m);
        assert!(m.page_reads > 0, "cold pool faults pages in");
        assert!(m.pool_hits > 0, "tiny database: later touches hit");
        let pristine =
            Metrics { page_reads: m.page_reads, pool_hits: m.pool_hits, ..Default::default() };
        assert_eq!(m, pristine, "touches must charge page counters only");

        // rows newer than the flushed segment are skipped, not faulted
        let fresh = db.insert_element(b, vec![Value::Int(9), Value::Text("w".into())]);
        let mut ctx = db.storage_ctx();
        let before = m;
        ctx.touch_element(fresh, &mut m);
        assert_eq!(m, before, "unflushed rows live only in the heap");
    }

    #[test]
    fn attach_from_env_rejects_unknown_backend() {
        // exercised without touching the real process env for known good
        // values (the env is process-global; oracle/suite set it up front)
        let (g, s) = tiny();
        let mut db = build(&g, &s);
        std::env::set_var("COLORIST_BACKEND", "bogus");
        assert!(attach_from_env(&mut db).is_err());
        std::env::set_var("COLORIST_BACKEND", "paged-mem");
        assert!(attach_from_env(&mut db).unwrap());
        assert!(db.is_paged());
        std::env::remove_var("COLORIST_BACKEND");
        let mut db2 = build(&g, &s);
        assert!(!attach_from_env(&mut db2).unwrap());
        let _ = s;
    }
}

#!/usr/bin/env bash
# Offline CI for the workspace: format, lint, build, test, and a smoke run
# of the Table 1 benchmark at a small scale. No network access required —
# the workspace has zero external dependencies.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets --all-features -- -D warnings

echo "==> cargo doc (warning-free)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> static lint (catalog x 7 strategies: schema linter + plan verifier)"
# S0xx schema diagnostics and P0xx plan diagnostics over the whole catalog;
# exits non-zero on any diagnostic.
cargo run -q --release -p colorist-workload --bin colorist-lint

echo "==> oracle smoke (256 seeds, all seven strategies)"
# Differential-testing oracle: random diagrams, shared canonical instance,
# randomized pattern workload, pairwise answer equivalence. Bounded well
# under a minute; exits non-zero on any divergence.
cargo run -q --release -p colorist-workload --bin colorist-oracle -- --seeds 256

echo "==> paged-backend oracle (64 seeds, in-memory page store)"
# The same answer-equivalence sweep with every database attached to the
# paged storage backend (DESIGN.md §14): answers and all pre-existing
# deterministic counters must stay byte-identical; only the page counters
# may differ from zero. Uses the in-memory page store so CI leaves no
# files behind.
cargo run -q --release -p colorist-workload --bin colorist-oracle -- \
    --seeds 64 --backend paged-mem

echo "==> batch oracle (128 seeds: atomic batches, snapshot reads, traced)"
# Replays randomized update batches (attribute writes + delete-closed
# deletes) under all seven strategies: snapshot answers must match the
# pre-batch serial run, indexed kernels must match reference, and all
# strategies must agree both mid-batch and post-batch. The emitted trace
# is shape-validated so the batch/snapshot span categories stay within
# the perfgate vocabulary.
cargo run -q --release -p colorist-workload --bin colorist-oracle -- \
    --batch-seeds 128 --trace results/trace_batch_ci.json
cargo run -q --release -p colorist-bench --bin colorist-perfgate -- \
    --validate-trace results/trace_batch_ci.json
rm -f results/trace_batch_ci.json

echo "==> file-backed batch oracle (32 seeds, FilePages backend)"
# The randomized delete-closed batch sweep again, but with every database
# flushed to real temp files through the FilePages backend — catching
# file-backed flush bugs (torn segment writes, stale directory entries)
# that the in-memory page store cannot exhibit. Temp files are unlinked
# on drop, so CI leaves nothing behind.
cargo run -q --release -p colorist-workload --bin colorist-oracle -- \
    --batch-seeds 32 --backend paged

echo "==> independence oracle (128 seeds: B002-B004 effect analysis, traced)"
# Certifies one random batch pair per seed under all seven strategies
# (B003), commits certified-independent pairs in both orders asserting
# byte-identical final databases, shadow-tracked footprint containment
# (B002), snapshot-safety of read-disjoint plans (B004), and
# scheduler/serial agreement; grades certified-conflicting pairs for
# genuine dynamic witnesses. The trace carries the new `effect` spans,
# shape-validated against the perfgate vocabulary.
cargo run -q --release -p colorist-workload --bin colorist-oracle -- \
    --independence-seeds 128 --trace results/trace_independence_ci.json
cargo run -q --release -p colorist-bench --bin colorist-perfgate -- \
    --validate-trace results/trace_independence_ci.json
rm -f results/trace_independence_ci.json

echo "==> delete/batch torture (release): snapshot isolation under concurrent commit"
# tests/deletes.rs: delete-then-query differentials across kernel
# dispatches, DEEP/UNDR copy-delete regression, and concurrent snapshot
# readers racing a committing batch. Runs in the debug suite above too;
# the release rerun exercises the race without debug_assert pacing.
cargo test -q --release --test deletes

echo "==> table1 bench (COLORIST_SCALE=300, traced)"
# Full-scale run with span collection: the summary feeds the perf gate, the
# chrome-trace JSON is validated for shape (hierarchy, ids, thread nesting).
COLORIST_SCALE=300 COLORIST_SEED=42 \
    COLORIST_SUMMARY="results/bench_summary_ci.json" \
    cargo run -q --release -p colorist-bench --bin table1 -- \
    --trace results/trace_ci.json >/dev/null
test -s results/bench_summary_ci.json

echo "==> perfgate: validate emitted trace"
cargo run -q --release -p colorist-bench --bin colorist-perfgate -- \
    --validate-trace results/trace_ci.json

echo "==> perfgate: diff against committed baseline + optimizer-quality gate"
# Deterministic operation counts must match the committed baseline exactly
# (any drift hard-fails); wall-clock is warn-only — CI hardware is shared
# and noisy, so time regressions inform rather than block here. The same
# diff enforces the optimizer-quality gate on both documents: no query's
# cost-based gate sum may exceed its heuristic twin's, and estimate-vs-
# measured drift must stay within the committed q-error budget.
cargo run -q --release -p colorist-bench --bin colorist-perfgate -- \
    --baseline results/bench_baseline.json \
    --current results/bench_summary_ci.json \
    --wall-warn-only \
    --q-error-budget 8.0
rm -f results/bench_summary_ci.json results/trace_ci.json

echo "==> table1 bench, paged backend (scale 300, two pool budgets)"
# The same suite through the paged storage backend (in-memory page store),
# once at the default 16 MiB pool and once starved at 64 KiB (8 frames,
# forcing heavy clock eviction on every query). The page
# counters (page_reads/page_writes/pool_hits/pool_evictions) are
# deterministic for a given scale, seed and pool budget, so the perfgate
# exact-matches them against the committed per-budget baselines — any
# drift in eviction or fault behavior hard-fails.
for pool in 16777216 65536; do
    baseline="results/bench_baseline_paged_${pool}.json"
    COLORIST_SCALE=300 COLORIST_SEED=42 \
        COLORIST_SUMMARY="results/bench_summary_paged_ci.json" \
        cargo run -q --release -p colorist-bench --bin table1 -- \
        --backend paged-mem --pool-bytes "$pool" >/dev/null
    test -s results/bench_summary_paged_ci.json
    cargo run -q --release -p colorist-bench --bin colorist-perfgate -- \
        --baseline "$baseline" \
        --current results/bench_summary_paged_ci.json \
        --wall-warn-only \
        --q-error-budget 8.0
    rm -f results/bench_summary_paged_ci.json
done

echo "==> server smoke: colorist-scale (scale-300-sized point, traced + gated)"
# Small concurrent run of the multi-client query service (DESIGN.md §15):
# 2 workers, 2 client threads, round-structured read-heavy mix at the
# 10k-element point (the same order of magnitude as the scale-300 table1
# suite). The emitted trace is shape-validated (the `server` span
# category with its queue-wait/plan-cache counters), and the scale
# document is diffed against the committed baseline: identity fields
# (element counts, request counts, answer checksums, final epochs) and
# plan-cache counters exactly, throughput/p99 warn-only on shared
# hardware. Worker counts are pinned because `workers` is comparability
# metadata — counters are deterministic for ANY worker count (the
# torture test in tests/server.rs pins that), but two documents must
# describe the same configuration to be diffable.
COLORIST_SEED=42 \
    cargo run -q --release -p colorist-bench --bin colorist-scale -- \
    --scales 1000,10000 --workers 2 --clients 2 --rounds 2 \
    --speedup-scale 0 --out results/bench_scale_ci.json \
    --trace results/trace_scale_ci.json >/dev/null
cargo run -q --release -p colorist-bench --bin colorist-perfgate -- \
    --validate-trace results/trace_scale_ci.json
cargo run -q --release -p colorist-bench --bin colorist-perfgate -- --scale \
    --baseline results/bench_scale_baseline.json \
    --current results/bench_scale_ci.json \
    --wall-warn-only
rm -f results/bench_scale_ci.json results/trace_scale_ci.json

echo "==> ci.sh: all checks passed"

//! Property tests for the cost-based optimizer (PR-6): the statistics
//! catalog's estimates against measured cardinalities on randomized data,
//! counter domination of optimized plans over the heuristic planner across
//! the whole TPC-W workload and all seven strategies, and a plan-mutation
//! harness driving the static verifier's `P010` cost-annotation audit.
//! Randomness comes from the repository's own deterministic
//! [`Rng`](colorist::datagen::Rng); build with `--features fuzz` to
//! multiply the case count.

use colorist::core::{design, Strategy};
use colorist::datagen::{generate, materialize, Rng, ScaleProfile};
use colorist::er::{catalog, ErGraph};
use colorist::query::{
    compile, execute, optimize, verify_plan, CmpOp, KernelChoice, PatternBuilder,
};
use colorist::store::{CmpKind, KernelDispatch, Value};
use colorist::workload::tpcw;

fn cases() -> u64 {
    if cfg!(feature = "fuzz") {
        48
    } else {
        8
    }
}

/// The histogram estimator's contract: on any instance and any comparison
/// constant, a single-predicate estimate deviates from the true matching
/// count by at most one bucket's depth ([`max_bucket_rows`] — equi-depth
/// buckets never split a distinct key, so only the straddling or containing
/// bucket can be misjudged). Verified against measured answers over random
/// scales, data seeds, and constants.
#[test]
fn histogram_estimates_stay_within_one_bucket_of_truth() {
    let g = ErGraph::from_diagram(&catalog::tpcw()).expect("tpcw builds");
    let schema = design(&g, Strategy::Af).expect("AF designs");
    for case in 0..cases() {
        let mut rng = Rng::new(0xE57_0001u64.wrapping_add(case));
        let scale = 20 + rng.below(120) as u32;
        let inst = generate(&g, &ScaleProfile::tpcw(&g, scale), 1000 + case);
        let db = materialize(&g, &schema, &inst);
        let preds: [(&str, &str, CmpOp, Value); 4] = [
            ("item", "cost", CmpOp::Lt, Value::Float(rng.below(10_000) as f64 / 10.0)),
            ("customer", "discount", CmpOp::Gt, Value::Float(rng.below(10_000) as f64)),
            ("customer", "id", CmpOp::Eq, Value::Int(rng.below(2 * scale as u64) as i64)),
            ("order", "id", CmpOp::Lt, Value::Int(rng.below(4 * scale as u64) as i64)),
        ];
        for (entity, attr, op, value) in preds {
            let q = PatternBuilder::new(&g, "probe")
                .node(entity)
                .pred(attr, op, value.clone())
                .output(0)
                .build()
                .expect("probe pattern builds");
            let plan = compile(&g, &db.schema, &q).expect("probe compiles");
            let truth = execute(&db, &g, &plan).expect("probe executes").distinct as f64;
            let node = q.nodes[0].node;
            let attr_ix = q.nodes[0].predicate.as_ref().expect("probe has a predicate").attr;
            let kind = match op {
                CmpOp::Eq => CmpKind::Eq,
                CmpOp::Lt => CmpKind::Lt,
                CmpOp::Gt => CmpKind::Gt,
            };
            let est = db.estimate_predicate_matches(node, attr_ix, kind, &value).0;
            let bound = db.statistics().max_bucket_rows(node, attr_ix) as f64;
            assert!(
                (est - truth).abs() <= bound + 1e-9,
                "case {case}: {entity}.{attr} {op:?} {value:?} at scale {scale}: \
                 estimated {est}, measured {truth}, bucket bound {bound}"
            );
        }
    }
}

/// The optimizer's domination contract on the committed workload: for every
/// TPC-W read query on every strategy, the cost-based plan answers
/// identically to the heuristic plan and never increases the perf-gate sum
/// `elements_scanned + join_probes + bytes_touched`.
#[test]
fn optimized_plans_dominate_heuristic_on_tpcw() {
    let g = ErGraph::from_diagram(&catalog::tpcw()).expect("tpcw builds");
    let w = tpcw::workload(&g);
    let inst = generate(&g, &ScaleProfile::tpcw(&g, 60), 42);
    for s in Strategy::ALL {
        let schema = design(&g, s).expect("strategy designs tpcw");
        let db = materialize(&g, &schema, &inst);
        let mut heur = db.clone();
        heur.set_kernel_dispatch(KernelDispatch::Ratio);
        for q in &w.reads {
            let opt_plan = optimize(&db, &g, q).expect("optimizer plans");
            let diags = verify_plan(&g, &db.schema, &opt_plan);
            assert!(diags.is_empty(), "{}/{}: {diags:?}", s.label(), q.name);
            assert!(!opt_plan.costs.is_empty(), "{}/{} carries no estimates", s.label(), q.name);
            let r = execute(&db, &g, &opt_plan).expect("optimized plan executes");
            let h_plan = compile(&g, &heur.schema, q).expect("heuristic plan compiles");
            let h = execute(&heur, &g, &h_plan).expect("heuristic plan executes");
            assert_eq!(r.elements, h.elements, "{}/{}: answers differ", s.label(), q.name);
            assert_eq!(r.distinct, h.distinct, "{}/{}: counts differ", s.label(), q.name);
            let opt_gate =
                r.metrics.elements_scanned + r.metrics.join_probes + r.metrics.bytes_touched;
            let heur_gate =
                h.metrics.elements_scanned + h.metrics.join_probes + h.metrics.bytes_touched;
            assert!(
                opt_gate <= heur_gate,
                "{}/{}: optimized gate sum {opt_gate} exceeds heuristic {heur_gate}",
                s.label(),
                q.name
            );
        }
    }
}

/// The `P010` audit catches every way a cost annotation can lie about the
/// plan it rides on: wrong annotation count, mis-targeted op index,
/// non-finite or negative estimates, and a kernel the annotated operator
/// cannot dispatch to — while the optimizer's own output passes clean.
#[test]
fn mutated_cost_annotations_are_rejected_as_p010() {
    let g = ErGraph::from_diagram(&catalog::tpcw()).expect("tpcw builds");
    let w = tpcw::workload(&g);
    let inst = generate(&g, &ScaleProfile::tpcw(&g, 30), 7);
    let schema = design(&g, Strategy::Deep).expect("DEEP designs");
    let db = materialize(&g, &schema, &inst);
    let q8 = w.reads.iter().find(|q| q.name == "Q8").expect("Q8 exists");
    let clean = optimize(&db, &g, q8).expect("optimizer plans Q8");
    assert!(verify_plan(&g, &db.schema, &clean).is_empty(), "clean plan must verify");
    assert!(clean.costs.len() == clean.ops.len(), "one estimate per op");

    let mut truncated = clean.clone();
    truncated.costs.pop();
    let mut mistargeted = clean.clone();
    mistargeted.costs[0].op = 1;
    let mut nan = clean.clone();
    nan.costs[0].rows = f64::NAN;
    let mut negative = clean.clone();
    negative.costs[0].scanned = -1.0;
    let mut wrong_kernel = clean.clone();
    // op 0 is a scan; Gallop only applies to structural semi-joins
    wrong_kernel.costs[0].kernel = KernelChoice::Gallop;

    for (what, mutant) in [
        ("truncated annotation list", truncated),
        ("mis-targeted op index", mistargeted),
        ("NaN estimate", nan),
        ("negative estimate", negative),
        ("inapplicable kernel", wrong_kernel),
    ] {
        let diags = verify_plan(&g, &db.schema, &mutant);
        assert!(
            diags.iter().any(|d| d.code == "P010"),
            "{what}: expected a P010 diagnostic, got {diags:?}"
        );
        assert!(
            diags.iter().all(|d| d.code == "P010"),
            "{what}: mutation must only trip the cost audit, got {diags:?}"
        );
    }
}

//! Plan-mutation harness for the static verifier.
//!
//! Soundness: every plan the compiler emits over a multi-seed oracle sweep
//! must verify clean (the verifier never rejects real compiler output).
//! Sensitivity: classic IR corruptions — dropping a via step, swapping a
//! register, re-siting a completeness charge, zeroing the recorded metrics
//! — must each be rejected with the expected stable diagnostic code.

use colorist::mct::lint_schema;
use colorist::query::{verify_plan, Metrics, Op, Plan, VDir};
use colorist::workload::{compile_seed, OracleConfig, SeedCorpus};

fn sweep_seeds() -> u64 {
    if cfg!(feature = "fuzz") {
        256
    } else {
        64
    }
}

fn corpus(seed: u64) -> SeedCorpus {
    compile_seed(seed, &OracleConfig::default())
}

/// Acceptance: the verifier accepts 100% of compiled plans (and the linter
/// every designed schema) across the sweep.
#[test]
fn sweep_of_compiled_plans_verifies_clean() {
    let mut plans = 0usize;
    for seed in 0..sweep_seeds() {
        let c = corpus(seed);
        for (s, schema) in &c.schemas {
            let diags = lint_schema(&c.graph, schema);
            assert!(diags.is_empty(), "seed {seed} [{s}] schema lint: {diags:?}");
        }
        for (si, qname, plan) in &c.plans {
            let (s, schema) = &c.schemas[*si];
            let diags = verify_plan(&c.graph, schema, plan);
            assert!(diags.is_empty(), "seed {seed} [{s}] {qname}:\n{plan}\n{diags:?}");
            plans += 1;
        }
    }
    assert!(plans > 100, "sweep produced only {plans} plans — not a real corpus");
}

/// Run `mutate` over every plan of a few seeds; for each plan it chooses to
/// mutate, the verifier must emit `code`. Returns how many plans were
/// mutated; asserts the class was exercised at all.
fn assert_mutation_class(
    name: &str,
    code: &str,
    mutate: impl Fn(&SeedCorpus, usize, &mut Plan) -> bool,
) {
    let mut mutated = 0usize;
    for seed in 0..8 {
        let c = corpus(seed);
        for (si, qname, plan) in &c.plans {
            let mut m = plan.clone();
            if !mutate(&c, *si, &mut m) {
                continue;
            }
            mutated += 1;
            let (s, schema) = &c.schemas[*si];
            let diags = verify_plan(&c.graph, schema, &m);
            assert!(
                diags.iter().any(|d| d.code == code),
                "mutation `{name}` on seed {seed} [{s}] {qname} not rejected with {code}; \
                 got {diags:?}\n{m}"
            );
        }
    }
    assert!(mutated > 0, "mutation class `{name}` never applied — corpus too narrow");
}

/// The top- and bottom-side ER nodes of a structural run, if they differ
/// (mutations that move a charge to the bottom need them distinct to be
/// guaranteed inadmissible).
fn run_ends(c: &SeedCorpus, op: &Op) -> Option<(colorist::er::NodeId, colorist::er::NodeId)> {
    let Op::StructSemi { node, via, dir, .. } = op else { return None };
    let (top, bottom) = match dir {
        VDir::Down => {
            (c.graph.chain_end(*node, &via.iter().rev().copied().collect::<Vec<_>>())?, *node)
        }
        VDir::Up => (*node, c.graph.chain_end(*node, via)?),
    };
    (top != bottom).then_some((top, bottom))
}

/// Dropping one edge of a `via` chain breaks path-exactness → P004.
#[test]
fn dropped_via_step_is_rejected() {
    assert_mutation_class("drop-via", "P004", |_, _, plan| {
        for op in &mut plan.ops {
            if let Op::StructSemi { via, .. } = op {
                if via.len() >= 2 {
                    via.pop();
                    return true;
                }
            }
        }
        false
    });
}

/// Redirecting an operator's source to its own destination register makes
/// the value flow use-before-def → P001.
#[test]
fn swapped_register_is_rejected() {
    assert_mutation_class("swap-register", "P001", |_, _, plan| {
        for op in &mut plan.ops {
            match op {
                Op::StructSemi { dst, src, .. }
                | Op::ValueSemi { dst, src, .. }
                | Op::LinkSemi { dst, src, .. }
                | Op::Cross { dst, src, .. }
                | Op::Distinct { dst, src, .. }
                | Op::GroupBy { dst, src, .. } => {
                    *src = *dst;
                    return true;
                }
                Op::Scan { .. } | Op::Intersect { .. } => {}
            }
        }
        false
    });
}

/// Re-siting a completeness charge at the run's *bottom* placement — the
/// exact shape of the pre-fix §4.2 completeness bug — → P007.
#[test]
fn resited_completeness_charge_is_rejected() {
    assert_mutation_class("resite-charge", "P007", |c, si, plan| {
        let schema = &c.schemas[si].1;
        for i in 0..plan.charges.len() {
            let op = &plan.ops[plan.charges[i].op];
            let Some((_, bottom)) = run_ends(c, op) else { continue };
            let Op::StructSemi { color, .. } = op else { continue };
            let ps = schema.placements_of_in_color(bottom, *color);
            if let Some(&p) = ps.first() {
                plan.charges[i].at = p;
                return true;
            }
        }
        false
    });
}

/// A missing charge — the compiler forgot to record where a run's
/// completeness obligation anchors — → P007.
#[test]
fn dropped_completeness_charge_is_rejected() {
    assert_mutation_class("drop-charge", "P007", |_, _, plan| {
        if plan.charges.is_empty() {
            return false;
        }
        plan.charges.clear();
        true
    });
}

/// Zeroing the recorded static metrics makes them drift from the ones
/// re-derived from the IR → P008.
#[test]
fn zeroed_metric_is_rejected() {
    assert_mutation_class("zero-metric", "P008", |_, _, plan| {
        if plan.metrics == Metrics::default() {
            return false;
        }
        plan.metrics = Metrics::default();
        true
    });
}

/// A register written but never read (and not the output) is dead → P003.
#[test]
fn dead_register_is_rejected() {
    assert_mutation_class("dead-register", "P003", |c, si, plan| {
        let schema = &c.schemas[si].1;
        // append a scan whose result nothing consumes
        let Some(Op::Scan { color, node, .. }) = plan.ops.first().cloned() else {
            return false;
        };
        if schema.placements_of_in_color(node, color).is_empty() {
            return false;
        }
        let dst = plan.reg_count;
        plan.reg_count += 1;
        plan.ops.push(Op::Scan { dst, color, node, pred: None });
        true
    });
}

//! The load-bearing correctness property of the whole reproduction: the
//! *same logical query* returns the *same logical answer* on every schema
//! of a diagram — exactly the equivalence the paper engineered its ToXgene
//! data generation to guarantee ("orchestrated to contain equivalent
//! content to produce equivalent query results").

use colorist::core::Strategy;
use colorist::datagen::ScaleProfile;
use colorist::er::{catalog, ErGraph};
use colorist::workload::{derby, suite, tpcw, xmark};

fn check_diagram(name: &str, base: u32) {
    let g = ErGraph::from_diagram(&catalog::by_name(name).unwrap()).unwrap();
    let w = match name {
        "tpcw" => tpcw::workload(&g),
        "derby" => derby::workload(&g),
        _ => xmark::workload(&g),
    };
    let profile = match name {
        "tpcw" => ScaleProfile::tpcw(&g, base),
        _ => ScaleProfile::uniform(&g, base),
    };
    let results = suite::run_suite(&g, &Strategy::ALL, &w, &profile, 42)
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    for q in &w.reads {
        let reference = results[0].run(&q.name).unwrap().logical;
        for r in &results {
            let run = r.run(&q.name).unwrap();
            assert_eq!(
                run.logical,
                reference,
                "{name}/{}: {} disagrees with {}",
                q.name,
                r.strategy.label(),
                results[0].strategy.label()
            );
            // physical never undercounts logical
            assert!(run.physical >= run.logical, "{name}/{}/{}", q.name, r.strategy);
        }
    }
    // update outcomes: logical counts agree across schemas too
    for u in &w.updates {
        let reference = results[0].run(&u.name).unwrap().logical;
        for r in &results {
            assert_eq!(
                r.run(&u.name).unwrap().logical,
                reference,
                "{name}/{}: {}",
                u.name,
                r.strategy.label()
            );
        }
    }
}

#[test]
fn tpcw_equivalent_across_all_seven_schemas() {
    check_diagram("tpcw", 60);
}

#[test]
fn derby_equivalent_across_all_seven_schemas() {
    check_diagram("derby", 40);
}

#[test]
fn er5_bank_equivalent() {
    check_diagram("er5", 40);
}

#[test]
fn er6_company_with_recursion_equivalent() {
    check_diagram("er6", 40);
}

#[test]
fn er8_auction_equivalent() {
    check_diagram("er8", 40);
}

#[test]
fn er9_marketplace_equivalent() {
    check_diagram("er9", 30);
}

#[test]
fn er10_conference_equivalent() {
    check_diagram("er10", 40);
}

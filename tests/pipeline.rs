//! End-to-end pipeline tests: DSL text → simplification → design →
//! materialization → queries → updates → queries again, with the paper's
//! metric expectations asserted along the way.

use colorist::core::{design, Strategy};
use colorist::datagen::{generate, materialize, ScaleProfile};
use colorist::er::parse::parse_diagram;
use colorist::er::simplify::simplify;
use colorist::er::{catalog, Attribute, Domain, ErDiagram, ErGraph};
use colorist::query::pattern::find_edge;
use colorist::query::{
    compile, execute, execute_update, InsertLink, InsertSpec, NewInstance, Partner, PatternBuilder,
    UpdateAction, UpdateSpec,
};
use colorist::store::Value;
use colorist::workload::tpcw;

#[test]
fn dsl_to_answers() {
    let d = parse_diagram(
        "diagram shop\n\
         entity customer { id* name }\n\
         entity order { id* total:float }\n\
         entity item { id* title }\n\
         rel places 1:m customer -- order!\n\
         rel line m:n order -- item\n",
    )
    .unwrap();
    let g = ErGraph::from_diagram(&d).unwrap();
    let profile = ScaleProfile::uniform(&g, 50);
    let inst = generate(&g, &profile, 1);

    let q = PatternBuilder::new(&g, "items-of-customer")
        .node("customer")
        .pred_eq("id", Value::Int(3))
        .node("item")
        .chain(0, 1, &["places", "order", "line"])
        .unwrap()
        .output(1)
        .distinct()
        .build()
        .unwrap();

    let mut answers = Vec::new();
    for s in Strategy::ALL {
        let schema = design(&g, s).unwrap();
        let db = materialize(&g, &schema, &inst);
        let plan = compile(&g, &db.schema, &q).unwrap();
        let r = execute(&db, &g, &plan).unwrap();
        answers.push((s, r.distinct));
    }
    let first = answers[0].1;
    assert!(first > 0, "customer 3 ordered something");
    for (s, a) in answers {
        assert_eq!(a, first, "{s}");
    }
}

#[test]
fn non_simplified_diagrams_reduce_then_design() {
    // a ternary relationship + a multivalued attribute, reduced by simplify()
    let mut d = ErDiagram::new("raw");
    d.add_entity(
        "supplier",
        vec![
            Attribute::key("id"),
            Attribute::with_domain("phone", Domain::MultiValued(Box::new(Domain::Text))),
        ],
    )
    .unwrap();
    d.add_entity("part", vec![Attribute::key("id")]).unwrap();
    d.add_entity("project", vec![Attribute::key("id")]).unwrap();
    d.add_relationship(
        "supplies",
        vec![
            colorist::er::Endpoint::new("supplier", colorist::er::Cardinality::Many),
            colorist::er::Endpoint::new("part", colorist::er::Cardinality::Many),
            colorist::er::Endpoint::new("project", colorist::er::Cardinality::Many),
        ],
        vec![],
    )
    .unwrap();

    let s = simplify(&d).unwrap();
    let g = ErGraph::from_diagram(&s).unwrap();
    let schema = design(&g, Strategy::Dr).unwrap();
    let profile = ScaleProfile::uniform(&g, 30);
    let inst = generate(&g, &profile, 2);
    let db = materialize(&g, &schema, &inst);
    assert!(db.element_count() > 0);

    // parts supplied to project 1 — through the reified `supplies`
    let q = PatternBuilder::new(&g, "q")
        .node("project")
        .pred_eq("id", Value::Int(1))
        .node("part")
        .chain(0, 1, &["supplies_project", "supplies", "supplies_part"])
        .unwrap()
        .output(1)
        .distinct()
        .build()
        .unwrap();
    let plan = compile(&g, &db.schema, &q).unwrap();
    let r = execute(&db, &g, &plan).unwrap();
    assert!(r.metrics.structural_joins + r.metrics.value_joins > 0);
}

#[test]
fn updates_are_visible_to_subsequent_queries_on_every_schema() {
    let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
    let profile = ScaleProfile::tpcw(&g, 50);
    let inst = generate(&g, &profile, 9);
    let order = g.node_by_name("order").unwrap();
    let make = g.node_by_name("make").unwrap();
    let customer = g.node_by_name("customer").unwrap();
    let e = |rel, part| find_edge(&g, rel, part, None).unwrap();

    let insert = UpdateSpec {
        name: "ins".into(),
        pattern: PatternBuilder::new(&g, "loc")
            .node("customer")
            .pred_eq("id", Value::Int(11))
            .output(0)
            .build()
            .unwrap(),
        action: UpdateAction::Insert(InsertSpec {
            instances: vec![NewInstance {
                node: order,
                attrs: vec![
                    Value::Int(123_456),
                    Value::Text("2026-07-05".into()),
                    Value::Float(5.0),
                    Value::Float(0.5),
                    Value::Float(5.5),
                    Value::Text("fresh".into()),
                ],
                links: vec![InsertLink {
                    rel: make,
                    self_edge: e(make, order),
                    partner_edge: e(make, customer),
                    partner: Partner::Matched(0),
                }],
            }],
        }),
    };
    let count_query = PatternBuilder::new(&g, "orders-of-11")
        .node("customer")
        .pred_eq("id", Value::Int(11))
        .node("order")
        .chain(0, 1, &["make"])
        .unwrap()
        .output(1)
        .build()
        .unwrap();
    let delete = UpdateSpec {
        name: "del".into(),
        pattern: PatternBuilder::new(&g, "delloc")
            .node("order")
            .pred_eq("status", Value::Text("fresh".into()))
            .output(0)
            .build()
            .unwrap(),
        action: UpdateAction::Delete,
    };

    for s in Strategy::ALL {
        let schema = design(&g, s).unwrap();
        let mut db = materialize(&g, &schema, &inst);
        let before = {
            let plan = compile(&g, &db.schema, &count_query).unwrap();
            execute(&db, &g, &plan).unwrap().distinct
        };
        execute_update(&mut db, &g, &insert).unwrap();
        let after = {
            let plan = compile(&g, &db.schema, &count_query).unwrap();
            execute(&db, &g, &plan).unwrap().distinct
        };
        assert_eq!(after, before + 1, "{s}: insert visible");
        execute_update(&mut db, &g, &delete).unwrap();
        let final_count = {
            let plan = compile(&g, &db.schema, &count_query).unwrap();
            execute(&db, &g, &plan).unwrap().distinct
        };
        assert_eq!(final_count, before, "{s}: delete visible");
    }
}

#[test]
fn metric_shapes_match_the_paper_on_tpcw() {
    let g = ErGraph::from_diagram(&catalog::tpcw()).unwrap();
    let w = tpcw::workload(&g);
    let profile = ScaleProfile::tpcw(&g, 60);
    let results =
        colorist::workload::suite::run_suite(&g, &Strategy::ALL, &w, &profile, 42).unwrap();
    let by = |label: &str| results.iter().find(|r| r.strategy.label() == label).unwrap();

    // Figure 9 / §6.2: SHALLOW requires the most value joins+crossings,
    // DEEP the least; EN requires many more than MCMR and DR.
    let total = |label: &str, f: &dyn Fn(&colorist::workload::QueryRun) -> u64| -> u64 {
        w.reported().iter().map(|q| f(by(label).run(q).unwrap())).sum()
    };
    let vjc: &dyn Fn(&colorist::workload::QueryRun) -> u64 =
        &|r| r.metrics.value_joins_plus_crossings();
    assert!(total("SHALLOW", vjc) > total("EN", vjc));
    assert!(total("EN", vjc) > total("MCMR", vjc));
    assert!(total("MCMR", vjc) >= total("DR", vjc));
    assert!(total("DEEP", vjc) <= total("DR", vjc));

    // value joins specifically: only the single-color value-encoding
    // schemas ever pay them
    let vj: &dyn Fn(&colorist::workload::QueryRun) -> u64 = &|r| r.metrics.value_joins;
    assert!(total("SHALLOW", vj) > 0);
    assert!(total("AF", vj) > 0);
    assert_eq!(total("EN", vj), 0);
    assert_eq!(total("DR", vj), 0);

    // storage: Table 1 ordering
    let bytes = |label: &str| by(label).stats.data_bytes;
    assert!(bytes("DEEP") > bytes("UNDR"));
    assert!(bytes("UNDR") > bytes("DR"));
    assert!(bytes("DR") > bytes("MCMR"));
    assert!(bytes("MCMR") >= bytes("EN"));

    // U3: duplicated schemas pay duplicate updates, normalized ones do not
    let dup = |label: &str| by(label).run("U3").unwrap().metrics.duplicate_updates;
    assert!(dup("DEEP") > 0);
    assert!(dup("UNDR") > 0);
    assert_eq!(dup("DR"), 0);
    assert_eq!(dup("EN"), 0);
}

//! Differential property tests for the PR-5 kernel families: the
//! gallop-skipping structural joins against the stack-merge reference, and
//! the index-accelerated scan/idref paths against the linear/hash
//! reference, over random inputs. Randomness comes from the repository's
//! own deterministic [`Rng`](colorist::datagen::Rng); build with
//! `--features fuzz` to multiply the case count. The cross-strategy oracle
//! additionally replays every CI seed under both kernel settings
//! (`Database::set_reference_kernels`), so these properties and the oracle
//! sweep cover the same contract from two directions.

use colorist::core::{design, Strategy};
use colorist::datagen::{generate, materialize, Rng, ScaleProfile};
use colorist::er::{catalog, ErGraph};
use colorist::mct::ColorId;
use colorist::query::{compile, execute};
use colorist::store::{
    structural_join, structural_join_merge, structural_semi_join, structural_semi_join_merge, Axis,
    Metrics, SemiSide,
};

fn cases() -> u64 {
    if cfg!(feature = "fuzz") {
        192
    } else {
        24
    }
}

/// Gallop dispatch is an implementation detail: for every (ancestor,
/// descendant) subset pair — dense, sparse, and wildly asymmetric — the
/// dispatching kernels return byte-identical output to the merge
/// reference, on both axes, both keep sides, and bounded depths.
#[test]
fn gallop_kernels_match_merge_on_random_subsets() {
    let g = ErGraph::from_diagram(&catalog::tpcw()).expect("tpcw builds");
    let schema = design(&g, Strategy::Af).expect("AF designs");
    let inst = generate(&g, &ScaleProfile::tpcw(&g, 60), 7);
    let db = materialize(&g, &schema, &inst);
    let color = ColorId(0);
    let pairs = [("country", "customer"), ("country", "order"), ("customer", "order")];

    let mut gallop_engaged = 0usize;
    for case in 0..cases() {
        let mut rng = Rng::new(0xA11_CE5u64.wrapping_add(case));
        let (anc_name, desc_name) = pairs[rng.below(pairs.len() as u64) as usize];
        let anc_all = db.color(color).of_node(g.node_by_name(anc_name).unwrap());
        let desc_all = db.color(color).of_node(g.node_by_name(desc_name).unwrap());
        // subsets at three densities per side: keeping every occurrence,
        // ~1/8, or ~1/64 — sparse-vs-dense pairs cross the dispatch ratio
        let densities = [1u64, 8, 64];
        let anc_den = densities[rng.below(3) as usize];
        let desc_den = densities[rng.below(3) as usize];
        let anc: Vec<_> = anc_all.iter().copied().filter(|_| rng.below(anc_den) == 0).collect();
        let desc: Vec<_> = desc_all.iter().copied().filter(|_| rng.below(desc_den) == 0).collect();

        for axis in [Axis::Child, Axis::Descendant] {
            let mut ma = Metrics::default();
            let mut mm = Metrics::default();
            let auto = structural_join(&db, color, &anc, &desc, axis, &mut ma);
            let merge = structural_join_merge(&db, color, &anc, &desc, axis, &mut mm);
            assert_eq!(auto, merge, "case {case}: {anc_name}/{desc_name} {axis:?}");
            if ma.elements_skipped > 0 {
                gallop_engaged += 1;
            }
        }
        for keep in [SemiSide::Ancestor, SemiSide::Descendant] {
            for depth in [None, Some(1), Some(2)] {
                let mut ma = Metrics::default();
                let mut mm = Metrics::default();
                let auto = structural_semi_join(&db, color, &anc, &desc, keep, depth, &mut ma);
                let merge =
                    structural_semi_join_merge(&db, color, &anc, &desc, keep, depth, &mut mm);
                assert_eq!(
                    auto, merge,
                    "case {case}: {anc_name}/{desc_name} keep {keep:?} depth {depth:?}"
                );
                if ma.elements_skipped > 0 {
                    gallop_engaged += 1;
                }
            }
        }
    }
    // the sweep must actually cross the dispatch threshold, not pass
    // vacuously on the merge path everywhere
    assert!(gallop_engaged > 0, "no case engaged the gallop kernels");
}

/// Whole-plan differential: every tpcw read on every strategy returns the
/// same answer with the value index live as with the reference kernels
/// pinned, and the indexed run never examines more elements.
#[test]
fn tpcw_workload_agrees_between_indexed_and_reference_kernels() {
    let g = ErGraph::from_diagram(&catalog::tpcw()).expect("tpcw builds");
    let w = colorist::workload::tpcw::workload(&g);
    let rounds = (cases() / 12).max(2);
    let mut strictly_reduced = 0usize;
    for round in 0..rounds {
        let scale = 12 + 9 * round as u32;
        let inst = generate(&g, &ScaleProfile::tpcw(&g, scale), 40 + round);
        for s in Strategy::ALL {
            let schema = design(&g, s).expect("designs");
            let mut db = materialize(&g, &schema, &inst);
            for q in &w.reads {
                let plan = compile(&g, &schema, q).expect("compiles");
                let fast = execute(&db, &g, &plan).expect("indexed run");
                db.set_reference_kernels(true);
                let slow = execute(&db, &g, &plan).expect("reference run");
                db.set_reference_kernels(false);
                let ctx = format!("scale {scale}: {}/{s}", q.name);
                assert_eq!(fast.elements, slow.elements, "{ctx}: answers diverge");
                assert_eq!(fast.results, slow.results, "{ctx}: physical counts diverge");
                assert_eq!(fast.distinct, slow.distinct, "{ctx}: logical counts diverge");
                // the reference paths never probe the index or skip
                assert_eq!(slow.metrics.index_lookups, 0, "{ctx}");
                assert_eq!(slow.metrics.elements_skipped, 0, "{ctx}");
                // on join-free plans (predicated scans ± distinct/group-by)
                // the index must never examine more than the linear walk,
                // and must examine strictly less whenever the predicate
                // rejected anything (elements_skipped > 0 — at some scales
                // a predicate matches the whole extent and there is nothing
                // to skip); on join plans the gallop cost model may
                // re-examine nested windows, so only answer equality is
                // asserted there
                let stat = plan.static_metrics();
                let predicated = q.nodes.iter().any(|n| n.predicate.is_some());
                if stat.structural_joins == 0 && stat.value_joins == 0 && predicated {
                    assert!(
                        fast.metrics.elements_scanned <= slow.metrics.elements_scanned,
                        "{ctx}: indexed scan examined {} of reference {}",
                        fast.metrics.elements_scanned,
                        slow.metrics.elements_scanned
                    );
                    if fast.metrics.elements_skipped > 0 {
                        assert!(
                            fast.metrics.elements_scanned < slow.metrics.elements_scanned,
                            "{ctx}: skipped {} yet examined {} of reference {}",
                            fast.metrics.elements_skipped,
                            fast.metrics.elements_scanned,
                            slow.metrics.elements_scanned
                        );
                    }
                }
                if fast.metrics.elements_scanned < slow.metrics.elements_scanned {
                    strictly_reduced += 1;
                }
            }
        }
    }
    assert!(strictly_reduced > 0, "no query's scan volume actually shrank");
}

//! Property test: random chain queries over random diagrams return the
//! same logical answers under every design strategy. This is the strongest
//! correctness statement in the repository — it quantifies over diagrams,
//! data, queries, *and* schemas at once.

use colorist::core::{design, Strategy};
use colorist::datagen::{generate, materialize, ScaleProfile};
use colorist::er::{
    Attribute, Cardinality, EligibleAssociations, Endpoint, ErDiagram, ErGraph,
};
use colorist::query::{compile, execute, Pattern, PatternBuilder};
use colorist::store::Value;
use proptest::prelude::{prop_assert_eq, proptest, ProptestConfig};
use proptest::strategy::Strategy as PropStrategy;

fn arb_diagram() -> impl PropStrategy<Value = ErDiagram> {
    let rel = (0usize..5, 0usize..5, 0u8..4, proptest::bool::ANY);
    (2usize..=5, proptest::collection::vec(rel, 1..=7)).prop_map(|(n, rels)| {
        let mut d = ErDiagram::new("random");
        for i in 0..n {
            d.add_entity(
                &format!("e{i}"),
                vec![Attribute::key("id"), Attribute::text("label")],
            )
            .unwrap();
        }
        for (k, (a, b, kind, total)) in rels.into_iter().enumerate() {
            let (a, b) = (a % n, b % n);
            let (ca, cb) = match kind {
                0 => (Cardinality::One, Cardinality::One),
                1 => (Cardinality::Many, Cardinality::One),
                2 => (Cardinality::One, Cardinality::Many),
                _ => (Cardinality::Many, Cardinality::Many),
            };
            let ea = Endpoint::new(&format!("e{a}"), ca).role("l");
            let mut eb = Endpoint::new(&format!("e{b}"), cb).role("r");
            if total {
                eb = eb.total();
            }
            d.add_relationship(&format!("r{k}"), vec![ea, eb], vec![]).unwrap();
        }
        d
    })
}

/// Build a chain query along a randomly chosen eligible association,
/// direction randomly flipped (exercising descents and ascents).
fn pick_query(g: &ErGraph, pick: usize, flip: bool, key: i64) -> Option<Pattern> {
    let elig = EligibleAssociations::enumerate(g, 6);
    if elig.is_empty() {
        return None;
    }
    let assocs: Vec<_> = elig.iter().collect();
    let a = assocs[pick % assocs.len()];
    let (from, to) = if flip { (a.target, a.source) } else { (a.source, a.target) };
    let via: Vec<String> = {
        let interior = &a.nodes[1..a.nodes.len() - 1];
        let names: Vec<String> =
            interior.iter().map(|&n| g.node(n).name.clone()).collect();
        if flip {
            names.into_iter().rev().collect()
        } else {
            names
        }
    };
    let via_refs: Vec<&str> = via.iter().map(String::as_str).collect();
    PatternBuilder::new(g, "rand")
        .node(&g.node(from).name)
        .pred_eq("id", Value::Int(key))
        .node(&g.node(to).name)
        .chain(0, 1, &via_refs)
        .ok()?
        .output(1)
        .distinct()
        .build()
        .ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_chain_queries_agree_across_all_strategies(
        d in arb_diagram(),
        pick in 0usize..64,
        flip in proptest::bool::ANY,
        key in 0i64..10,
        seed in 0u64..1000,
    ) {
        let g = ErGraph::from_diagram(&d).unwrap();
        let Some(q) = pick_query(&g, pick, flip, key) else {
            return Ok(()); // no eligible associations in this diagram
        };
        let profile = ScaleProfile::uniform(&g, 25);
        let inst = generate(&g, &profile, seed);
        let mut reference: Option<Vec<_>> = None;
        for s in Strategy::ALL {
            let schema = design(&g, s).unwrap();
            let db = materialize(&g, &schema, &inst);
            let plan = compile(&g, &db.schema, &q).unwrap();
            let r = execute(&db, &g, &plan);
            match &reference {
                None => reference = Some(r.elements),
                Some(expected) => prop_assert_eq!(
                    &r.elements, expected,
                    "{} disagrees on {:?}", s, q
                ),
            }
        }
    }
}

//! Property test: random chain queries over random diagrams return the
//! same logical answers under every design strategy. This is the strongest
//! correctness statement in the repository — it quantifies over diagrams,
//! data, queries, *and* schemas at once.
//!
//! Randomness comes from the repository's own deterministic
//! [`Rng`](colorist::datagen::Rng): each case is a fixed function of its
//! index. Build with `--features fuzz` to multiply the case count.

use colorist::core::{design, Strategy};
use colorist::datagen::{generate, materialize, Rng, ScaleProfile};
use colorist::er::{Attribute, Cardinality, EligibleAssociations, Endpoint, ErDiagram, ErGraph};
use colorist::query::{compile, execute, Pattern, PatternBuilder};
use colorist::store::Value;

fn cases() -> u64 {
    if cfg!(feature = "fuzz") {
        192
    } else {
        24
    }
}

/// A random simplified ER diagram: 2–5 entities, 1–7 binary relationships.
fn arb_diagram(rng: &mut Rng) -> ErDiagram {
    let n = 2 + rng.below(4) as usize;
    let n_rels = 1 + rng.below(7) as usize;
    let mut d = ErDiagram::new("random");
    for i in 0..n {
        d.add_entity(&format!("e{i}"), vec![Attribute::key("id"), Attribute::text("label")])
            .unwrap();
    }
    for k in 0..n_rels {
        let a = rng.below(n as u64) as usize;
        let b = rng.below(n as u64) as usize;
        let (ca, cb) = match rng.below(4) {
            0 => (Cardinality::One, Cardinality::One),
            1 => (Cardinality::Many, Cardinality::One),
            2 => (Cardinality::One, Cardinality::Many),
            _ => (Cardinality::Many, Cardinality::Many),
        };
        let ea = Endpoint::new(&format!("e{a}"), ca).role("l");
        let mut eb = Endpoint::new(&format!("e{b}"), cb).role("r");
        if rng.below(2) == 1 {
            eb = eb.total();
        }
        d.add_relationship(&format!("r{k}"), vec![ea, eb], vec![]).unwrap();
    }
    d
}

/// Build a chain query along a randomly chosen eligible association,
/// direction randomly flipped (exercising descents and ascents).
fn pick_query(g: &ErGraph, pick: usize, flip: bool, key: i64) -> Option<Pattern> {
    let elig = EligibleAssociations::enumerate(g, 6);
    if elig.is_empty() {
        return None;
    }
    let assocs: Vec<_> = elig.iter().collect();
    let a = assocs[pick % assocs.len()];
    let (from, to) = if flip { (a.target, a.source) } else { (a.source, a.target) };
    let via: Vec<String> = {
        let interior = &a.nodes[1..a.nodes.len() - 1];
        let names: Vec<String> = interior.iter().map(|&n| g.node(n).name.clone()).collect();
        if flip {
            names.into_iter().rev().collect()
        } else {
            names
        }
    };
    let via_refs: Vec<&str> = via.iter().map(String::as_str).collect();
    PatternBuilder::new(g, "rand")
        .node(&g.node(from).name)
        .pred_eq("id", Value::Int(key))
        .node(&g.node(to).name)
        .chain(0, 1, &via_refs)
        .ok()?
        .output(1)
        .distinct()
        .build()
        .ok()
}

/// Regression (found by the `fuzz`-depth run of the property below,
/// originally case 106; re-pinned to case 129 — the smallest index whose
/// DEEP plan still turns — when the datagen totality fix changed the
/// instance stream): on a schema with duplicated placements, an
/// ascent-then-descent chain plan turns at a node whose occurrences are
/// scattered over several subtrees, and no single occurrence need carry
/// the whole chain. DEEP returned an empty answer where every other
/// strategy found the match, until the executor widened struct-join
/// sources to all occurrences of the same logical instances.
#[test]
fn deep_turning_point_sees_all_duplicate_subtrees() {
    let case = 129u64;
    let mut rng = Rng::new(0xBEEF_u64.wrapping_add(case));
    let d = arb_diagram(&mut rng);
    let pick = rng.below(64) as usize;
    let flip = rng.below(2) == 1;
    let key = rng.below(10) as i64;
    let seed = rng.below(1000);

    let g = ErGraph::from_diagram(&d).unwrap();
    let q = pick_query(&g, pick, flip, key).expect("case 106 has an eligible association");
    let inst = generate(&g, &ScaleProfile::uniform(&g, 25), seed);
    let mut answers = Vec::new();
    for s in Strategy::ALL {
        let schema = design(&g, s).unwrap();
        let db = materialize(&g, &schema, &inst);
        let plan = compile(&g, &db.schema, &q).unwrap();
        answers.push((s, execute(&db, &g, &plan).unwrap().elements));
    }
    let (ref_s, reference) = &answers[1]; // AF: node-normal, single color
    assert_eq!(*ref_s, Strategy::Af);
    assert!(!reference.is_empty(), "the association instance exists");
    for (s, elems) in &answers {
        assert_eq!(
            elems, reference,
            "{s} must see the match through duplicate subtrees, like {ref_s}"
        );
    }
}

#[test]
fn random_chain_queries_agree_across_all_strategies() {
    for case in 0..cases() {
        let mut rng = Rng::new(0xBEEF_u64.wrapping_add(case));
        let d = arb_diagram(&mut rng);
        let pick = rng.below(64) as usize;
        let flip = rng.below(2) == 1;
        let key = rng.below(10) as i64;
        let seed = rng.below(1000);

        let g = ErGraph::from_diagram(&d).unwrap();
        let Some(q) = pick_query(&g, pick, flip, key) else {
            continue; // no eligible associations in this diagram
        };
        let profile = ScaleProfile::uniform(&g, 25);
        let inst = generate(&g, &profile, seed);
        let mut reference: Option<Vec<_>> = None;
        for s in Strategy::ALL {
            let schema = design(&g, s).unwrap();
            let db = materialize(&g, &schema, &inst);
            let plan = compile(&g, &db.schema, &q).unwrap();
            let r = execute(&db, &g, &plan).unwrap();
            match &reference {
                None => reference = Some(r.elements),
                Some(expected) => {
                    assert_eq!(&r.elements, expected, "case {case}: {s} disagrees on {q:?}")
                }
            }
        }
    }
}

//! Delete-then-query differentials and batch/snapshot integration tests
//! for the PR-7 audited delete path. Before that fix,
//! `remove_element_occurrences` removed color occurrences only: the
//! extent, the value index and the statistics catalog kept "ghost"
//! entries for deleted instances, so any scan — linear or
//! index-accelerated — kept answering with deleted elements, and on
//! DEEP/UNDR the doomed filter matched the canonical `ElementId` only, so
//! occurrences held by physical copies survived outright. Every test in
//! this file fails against that delete path and pins the repaired
//! contract: tpcw reads agree under every kernel dispatch after
//! randomized delete batches and never answer with a deleted instance;
//! copy occurrences die with their canonical; and snapshot readers on
//! other threads see byte-identical pre-batch answers while an
//! [`UpdateBatch`](colorist::store::UpdateBatch) commits.

use colorist::core::{design, Strategy};
use colorist::datagen::{generate, materialize, Rng, ScaleProfile};
use colorist::er::{catalog, ErGraph, NodeId};
use colorist::mct::ColorId;
use colorist::query::{compile, execute, execute_snapshot, PatternBuilder};
use colorist::store::{Database, ElementId, KernelDispatch, UpdateBatch};

fn cases() -> u64 {
    if cfg!(feature = "fuzz") {
        192
    } else {
        24
    }
}

/// Pick a randomized batch of logical delete targets as `(node, ordinal)`
/// coordinates — ordinals are strategy-independent, so the same targets
/// resolve on every materialization of the same instance set.
fn delete_targets(g: &ErGraph, db: &Database, rng: &mut Rng, count: usize) -> Vec<(NodeId, u32)> {
    let entities: Vec<NodeId> = g.entity_nodes().collect();
    let mut targets = Vec::new();
    while targets.len() < count {
        let node = entities[rng.below(entities.len() as u64) as usize];
        let n = db.ordinal_count(node);
        if n == 0 {
            continue;
        }
        let t = (node, rng.below(n as u64) as u32);
        if !targets.contains(&t) {
            targets.push(t);
        }
    }
    targets
}

/// After randomized delete batches, every tpcw read returns the same
/// answer under all three kernel dispatches (cost-model, fixed-ratio,
/// reference), and no answer contains a deleted instance. Pre-fix the
/// extents and value index kept ghost entries, so both the indexed and
/// the reference scans answered point lookups on deleted keys.
#[test]
fn tpcw_reads_agree_across_dispatches_after_delete_batches() {
    let g = ErGraph::from_diagram(&catalog::tpcw()).expect("tpcw builds");
    let w = colorist::workload::tpcw::workload(&g);
    let rounds = (cases() / 12).max(2);
    for round in 0..rounds {
        let scale = 14 + 9 * round as u32;
        let inst = generate(&g, &ScaleProfile::tpcw(&g, scale), 90 + round);
        let mut rng = Rng::new(0xDE1E7Eu64.wrapping_add(round));
        // the same logical instances die on every strategy
        let probe_db = {
            let schema = design(&g, Strategy::Shallow).expect("designs");
            materialize(&g, &schema, &inst)
        };
        let targets = delete_targets(&g, &probe_db, &mut rng, 5);
        for s in Strategy::ALL {
            let schema = design(&g, s).expect("designs");
            let mut db = materialize(&g, &schema, &inst);
            let mut batch = UpdateBatch::new();
            let mut doomed: Vec<(ElementId, String, colorist::store::Value)> = Vec::new();
            for &(node, ordinal) in &targets {
                let e = db.canonical_by_ordinal(node, ordinal).expect("target is live");
                doomed.push((e, g.node(node).name.clone(), db.element(e).attrs[0].clone()));
                batch.delete(e);
            }
            batch.apply(&mut db, &g).expect("delete batch applies");
            db.check_integrity().expect("post-delete audit");
            let ctx = format!("scale {scale}: {s}");
            // every deleted instance is unreachable through its key
            for (e, node_name, key) in &doomed {
                let probe = PatternBuilder::new(&g, "ghost_probe")
                    .node(node_name)
                    .pred_eq("id", key.clone())
                    .build()
                    .expect("probe builds");
                let plan = compile(&g, &schema, &probe).expect("probe compiles");
                for dispatch in
                    [KernelDispatch::CostModel, KernelDispatch::Ratio, KernelDispatch::Reference]
                {
                    db.set_kernel_dispatch(dispatch);
                    let got = execute(&db, &g, &plan).expect("probe runs");
                    assert!(
                        got.elements.is_empty(),
                        "{ctx}: deleted {node_name} {e:?} still answers under {dispatch:?}"
                    );
                }
            }
            // the full workload agrees under every dispatch, and never
            // resurrects a doomed element
            for q in &w.reads {
                let plan = compile(&g, &schema, q).expect("compiles");
                db.set_kernel_dispatch(KernelDispatch::CostModel);
                let cost = execute(&db, &g, &plan).expect("cost-model run");
                db.set_kernel_dispatch(KernelDispatch::Ratio);
                let ratio = execute(&db, &g, &plan).expect("ratio run");
                db.set_kernel_dispatch(KernelDispatch::Reference);
                let reference = execute(&db, &g, &plan).expect("reference run");
                let qctx = format!("{ctx}: {}", q.name);
                assert_eq!(cost.elements, reference.elements, "{qctx}: answers diverge");
                assert_eq!(cost.results, reference.results, "{qctx}: physical counts diverge");
                assert_eq!(cost.distinct, reference.distinct, "{qctx}: logical counts diverge");
                assert_eq!(ratio.elements, reference.elements, "{qctx}: ratio answers diverge");
                assert_eq!(ratio.results, reference.results, "{qctx}: ratio physical diverge");
                for (e, node_name, _) in &doomed {
                    assert!(
                        !cost.elements.contains(e),
                        "{qctx}: answer contains deleted {node_name} {e:?}"
                    );
                }
            }
            db.set_kernel_dispatch(KernelDispatch::CostModel);
        }
    }
}

/// DEEP and UNDR duplicate entities under every sharing placement, so a
/// logical instance owns occurrences through physical copies with their
/// own `ElementId`s. Deleting the instance — through the canonical *or*
/// through a copy — must remove every one of those occurrences. Pre-fix
/// the doomed filter matched `o.element == e`, so copy occurrences
/// survived the canonical's deletion.
#[test]
fn copy_occurrences_die_with_their_canonical_on_deep_and_undr() {
    let g = ErGraph::from_diagram(&catalog::tpcw()).expect("tpcw builds");
    let inst = generate(&g, &ScaleProfile::tpcw(&g, 20), 7);
    for s in [Strategy::Deep, Strategy::Undr] {
        let schema = design(&g, s).expect("designs");
        let mut db = materialize(&g, &schema, &inst);
        // find a copy: an element whose canonical is a different id
        let copy = (0..db.elements().len() as u32)
            .map(ElementId)
            .find(|&e| db.element(e).canonical != e)
            .unwrap_or_else(|| panic!("{s} materializes at least one copy"));
        let canon = db.element(copy).canonical;
        let occs_of = |db: &Database| -> usize {
            (0..db.color_count())
                .map(|c| {
                    db.color(ColorId(c as u16))
                        .occs()
                        .iter()
                        .filter(|o| db.element(o.element).canonical == canon)
                        .count()
                })
                .sum()
        };
        let before = occs_of(&db);
        assert!(before >= 2, "{s}: instance should occur more than once, got {before}");
        // delete through the copy's id — the whole instance dies; the
        // removal count includes cascaded subtree occurrences of other
        // instances nested below, so it is at least the instance's own
        assert!(
            db.remove_element_occurrences(copy) >= before,
            "{s}: every occurrence of the instance leaves"
        );
        assert_eq!(occs_of(&db), 0, "{s}: no copy occurrence survives");
        assert!(!db.is_live(canon), "{s}: canonical no longer live");
        let node = db.element(canon).node;
        assert!(!db.extent(node).contains(&canon), "{s}: extent retracted");
        db.check_integrity().unwrap_or_else(|e| panic!("{s}: post-delete audit: {e}"));
        // idempotent: deleting again (through the canonical) is a no-op
        assert_eq!(db.remove_element_occurrences(canon), 0, "{s}: second delete removes nothing");
    }
}

/// Snapshot isolation under concurrency: readers holding a pre-batch
/// [`Snapshot`](colorist::store::Snapshot) keep computing byte-identical
/// pre-batch answers on their own threads while a writer commits an
/// [`UpdateBatch`] — and after the commit the snapshot still answers from
/// the pre-batch version while the live database has moved on.
#[test]
fn snapshot_readers_are_isolated_from_a_committing_batch() {
    let g = ErGraph::from_diagram(&catalog::tpcw()).expect("tpcw builds");
    let w = colorist::workload::tpcw::workload(&g);
    let schema = design(&g, Strategy::Deep).expect("designs");
    let inst = generate(&g, &ScaleProfile::tpcw(&g, 30), 13);
    let mut db = materialize(&g, &schema, &inst);
    let plans: Vec<_> =
        w.reads.iter().map(|q| compile(&g, &schema, q).expect("compiles")).collect();
    let pre: Vec<_> = plans.iter().map(|p| execute(&db, &g, p).expect("pre run")).collect();

    let mut rng = Rng::new(0x5AFE);
    let targets = delete_targets(&g, &db, &mut rng, 4);
    let mut batch = UpdateBatch::new();
    for &(node, ordinal) in &targets {
        batch.delete(db.canonical_by_ordinal(node, ordinal).expect("live target"));
    }

    let snap = db.snapshot();
    let pre_epoch = db.epoch();
    let gref = &g;
    let db = std::thread::scope(|scope| {
        let writer = scope.spawn(move || {
            let receipt = batch.apply(&mut db, gref).expect("batch commits");
            assert_eq!(receipt.ops, 4);
            db
        });
        let readers: Vec<_> = (0..4)
            .map(|r| {
                let (snap, plans, pre) = (&snap, &plans, &pre);
                scope.spawn(move || {
                    for round in 0..8 {
                        for (plan, want) in plans.iter().zip(pre) {
                            let got = execute_snapshot(snap, gref, plan).expect("snapshot run");
                            let ctx = format!("reader {r} round {round}: {}", plan.name);
                            assert_eq!(got.elements, want.elements, "{ctx}: answers moved");
                            assert_eq!(got.results, want.results, "{ctx}: physical moved");
                            assert_eq!(got.distinct, want.distinct, "{ctx}: logical moved");
                        }
                    }
                })
            })
            .collect();
        for r in readers {
            r.join().expect("reader panicked");
        }
        writer.join().expect("writer panicked")
    });

    // post-commit: the snapshot still answers from the pre-batch version
    assert_eq!(snap.epoch(), pre_epoch, "snapshot pins the pre-batch epoch");
    assert!(db.epoch() > pre_epoch, "the live database moved on");
    db.check_integrity().expect("post-commit audit");
    let mut moved = 0usize;
    for (plan, want) in plans.iter().zip(&pre) {
        let still = execute_snapshot(&snap, &g, plan).expect("snapshot run");
        assert_eq!(still.elements, want.elements, "{}: snapshot drifted", plan.name);
        assert_eq!(still.results, want.results, "{}: snapshot drifted", plan.name);
        let live = execute(&db, &g, plan).expect("live run");
        if live.elements != want.elements || live.results != want.results {
            moved += 1;
        }
    }
    assert!(moved > 0, "the delete batch changed no answer — targets too timid");
}

/// Atomicity at the integration level: a batch that fails validation —
/// here a write conflicting with a delete of the same instance — leaves
/// the database byte-identical, answers included.
#[test]
fn rejected_batches_change_no_answer() {
    let g = ErGraph::from_diagram(&catalog::tpcw()).expect("tpcw builds");
    let w = colorist::workload::tpcw::workload(&g);
    let schema = design(&g, Strategy::Mcmr).expect("designs");
    let inst = generate(&g, &ScaleProfile::tpcw(&g, 12), 3);
    let mut db = materialize(&g, &schema, &inst);
    let plans: Vec<_> =
        w.reads.iter().map(|q| compile(&g, &schema, q).expect("compiles")).collect();
    let pre: Vec<_> = plans.iter().map(|p| execute(&db, &g, p).expect("pre run")).collect();
    let epoch = db.epoch();

    let victim = db.extent(g.node_by_name("customer").expect("customer node"))[0];
    let mut batch = UpdateBatch::new();
    batch
        .write_attr(victim, 1, colorist::store::Value::Text("torn".into()))
        .delete(victim)
        .delete(db.extent(g.node_by_name("item").expect("item node"))[0]);
    batch.apply(&mut db, &g).expect_err("write+delete conflict must be rejected");

    assert_eq!(db.epoch(), epoch, "rejected batch bumped the epoch");
    db.check_integrity().expect("audit after rejection");
    for (plan, want) in plans.iter().zip(&pre) {
        let got = execute(&db, &g, plan).expect("post-rejection run");
        assert_eq!(got.elements, want.elements, "{}: answer changed", plan.name);
        assert_eq!(got.results, want.results, "{}: physical changed", plan.name);
    }
}

//! Property tests for the paper's theorems over *random* simplified ER
//! diagrams — the mechanical counterpart of the proofs in §4 and §5.

use colorist::core::{self, design, single_color_feasibility, Strategy};
use colorist::er::{Attribute, Cardinality, EligibleAssociations, Endpoint, ErDiagram, ErGraph};
use proptest::prelude::{prop_assert, prop_assert_eq, proptest, ProptestConfig};
use proptest::strategy::Strategy as PropStrategy;

/// A random simplified ER diagram: `n` entities, relationships with random
/// cardinalities (1:1 / 1:M / M:N), participations, and endpoints
/// (recursive relationships included, with roles).
fn arb_diagram() -> impl PropStrategy<Value = ErDiagram> {
    let rel = (0usize..6, 0usize..6, 0u8..4, proptest::bool::ANY, proptest::bool::ANY);
    (2usize..=6, proptest::collection::vec(rel, 1..=9)).prop_map(|(n, rels)| {
        let mut d = ErDiagram::new("random");
        for i in 0..n {
            d.add_entity(
                &format!("e{i}"),
                vec![Attribute::key("id"), Attribute::text("label")],
            )
            .unwrap();
        }
        for (k, (a, b, kind, ta, tb)) in rels.into_iter().enumerate() {
            let (a, b) = (a % n, b % n);
            let (ca, cb) = match kind {
                0 => (Cardinality::One, Cardinality::One),
                1 => (Cardinality::Many, Cardinality::One),
                2 => (Cardinality::One, Cardinality::Many),
                _ => (Cardinality::Many, Cardinality::Many),
            };
            let mut ea = Endpoint::new(&format!("e{a}"), ca).role("l");
            let mut eb = Endpoint::new(&format!("e{b}"), cb).role("r");
            if ta {
                ea = ea.total();
            }
            if tb {
                eb = eb.total();
            }
            d.add_relationship(&format!("r{k}"), vec![ea, eb], vec![]).unwrap();
        }
        d
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 5.1: Algorithm MC always yields NN + EN + AR.
    #[test]
    fn theorem_5_1(d in arb_diagram()) {
        let g = ErGraph::from_diagram(&d).unwrap();
        let schema = design(&g, Strategy::En).unwrap();
        let elig = EligibleAssociations::enumerate(&g, 8);
        let p = core::check(&schema, &g, &elig);
        prop_assert!(p.node_normal);
        prop_assert!(p.edge_normal);
        prop_assert!(p.association_recoverable);
        prop_assert!(schema.icics().is_empty());
    }

    /// Theorem 5.2: Algorithm DUMC always yields NN + AR + DR.
    #[test]
    fn theorem_5_2(d in arb_diagram()) {
        let g = ErGraph::from_diagram(&d).unwrap();
        let schema = design(&g, Strategy::Dr).unwrap();
        let elig = EligibleAssociations::enumerate_default(&g);
        let p = core::check(&schema, &g, &elig);
        prop_assert!(p.node_normal);
        prop_assert!(p.association_recoverable);
        prop_assert!(p.direct_recoverable);
    }

    /// Theorem 4.1, both directions: the feasibility test agrees with what
    /// the AF translation actually achieves in one color.
    #[test]
    fn theorem_4_1(d in arb_diagram()) {
        let g = ErGraph::from_diagram(&d).unwrap();
        let feasible = single_color_feasibility(&g).feasible();
        let af = design(&g, Strategy::Af).unwrap();
        let elig = EligibleAssociations::enumerate(&g, 8);
        let p = core::check(&af, &g, &elig);
        prop_assert!(p.node_normal, "AF is always node normal");
        prop_assert_eq!(
            p.association_recoverable,
            feasible,
            "AF achieves single-color AR exactly when Theorem 4.1 allows it"
        );
    }

    /// MCMR keeps MC's color count and node normal form while only ever
    /// improving direct recoverability.
    #[test]
    fn mcmr_dominates_mc(d in arb_diagram()) {
        let g = ErGraph::from_diagram(&d).unwrap();
        let en = design(&g, Strategy::En).unwrap();
        let mcmr = design(&g, Strategy::Mcmr).unwrap();
        prop_assert_eq!(mcmr.color_count(), en.color_count());
        let elig = EligibleAssociations::enumerate(&g, 8);
        let before = core::properties::uncovered_associations(&en, &elig).len();
        let after = core::properties::uncovered_associations(&mcmr, &elig).len();
        prop_assert!(after <= before);
        prop_assert!(core::check(&mcmr, &g, &elig).node_normal);
    }

    /// Every strategy covers every node and edge (schema validation), and
    /// single-color strategies stay single-color.
    #[test]
    fn strategies_always_design(d in arb_diagram()) {
        let g = ErGraph::from_diagram(&d).unwrap();
        for s in Strategy::ALL {
            let schema = design(&g, s).unwrap();
            match s {
                Strategy::Deep | Strategy::Af | Strategy::Shallow => {
                    prop_assert_eq!(schema.color_count(), 1, "{}", s)
                }
                _ => {}
            }
        }
    }
}

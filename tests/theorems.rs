//! Property tests for the paper's theorems over *random* simplified ER
//! diagrams — the mechanical counterpart of the proofs in §4 and §5.
//!
//! Randomness comes from the repository's own deterministic [`Rng`]
//! (workspace builds offline, with no external crates): every case is a
//! fixed function of its index, so failures are reproducible from the
//! printed case number alone. Build with `--features fuzz` to multiply
//! the case counts for deeper soaks.

use colorist::core::{self, design, single_color_feasibility, Strategy};
use colorist::datagen::Rng;
use colorist::er::{Attribute, Cardinality, EligibleAssociations, Endpoint, ErDiagram, ErGraph};

/// Cases per property (multiplied under `--features fuzz`).
fn cases() -> u64 {
    if cfg!(feature = "fuzz") {
        512
    } else {
        64
    }
}

/// A random simplified ER diagram: 2–6 entities, 1–9 relationships with
/// random cardinalities (1:1 / 1:M / M:N), participations, and endpoints
/// (recursive relationships included, with roles).
fn arb_diagram(rng: &mut Rng) -> ErDiagram {
    let n = 2 + rng.below(5) as usize;
    let n_rels = 1 + rng.below(9) as usize;
    let mut d = ErDiagram::new("random");
    for i in 0..n {
        d.add_entity(&format!("e{i}"), vec![Attribute::key("id"), Attribute::text("label")])
            .unwrap();
    }
    for k in 0..n_rels {
        let a = rng.below(n as u64) as usize;
        let b = rng.below(n as u64) as usize;
        let (ca, cb) = match rng.below(4) {
            0 => (Cardinality::One, Cardinality::One),
            1 => (Cardinality::Many, Cardinality::One),
            2 => (Cardinality::One, Cardinality::Many),
            _ => (Cardinality::Many, Cardinality::Many),
        };
        let mut ea = Endpoint::new(&format!("e{a}"), ca).role("l");
        let mut eb = Endpoint::new(&format!("e{b}"), cb).role("r");
        if rng.below(2) == 1 {
            ea = ea.total();
        }
        if rng.below(2) == 1 {
            eb = eb.total();
        }
        d.add_relationship(&format!("r{k}"), vec![ea, eb], vec![]).unwrap();
    }
    d
}

/// Run `body` over `cases()` independent diagrams, tagging failures with
/// the reproducible case index.
fn for_random_diagrams(salt: u64, body: impl Fn(&ErGraph)) {
    for case in 0..cases() {
        let mut rng = Rng::new(0xC010_u64.wrapping_add(salt << 32).wrapping_add(case));
        let d = arb_diagram(&mut rng);
        let g = ErGraph::from_diagram(&d).unwrap();
        body(&g);
    }
}

/// Theorem 5.1: Algorithm MC always yields NN + EN + AR.
#[test]
fn theorem_5_1() {
    for_random_diagrams(51, |g| {
        let schema = design(g, Strategy::En).unwrap();
        let elig = EligibleAssociations::enumerate(g, 8);
        let p = core::check(&schema, g, &elig);
        assert!(p.node_normal);
        assert!(p.edge_normal);
        assert!(p.association_recoverable);
        assert!(schema.icics().is_empty());
    });
}

/// Theorem 5.2: Algorithm DUMC always yields NN + AR + DR.
#[test]
fn theorem_5_2() {
    for_random_diagrams(52, |g| {
        let schema = design(g, Strategy::Dr).unwrap();
        let elig = EligibleAssociations::enumerate_default(g);
        let p = core::check(&schema, g, &elig);
        assert!(p.node_normal);
        assert!(p.association_recoverable);
        assert!(p.direct_recoverable);
    });
}

/// Theorem 4.1, both directions: the feasibility test agrees with what
/// the AF translation actually achieves in one color.
#[test]
fn theorem_4_1() {
    for_random_diagrams(41, |g| {
        let feasible = single_color_feasibility(g).feasible();
        let af = design(g, Strategy::Af).unwrap();
        let elig = EligibleAssociations::enumerate(g, 8);
        let p = core::check(&af, g, &elig);
        assert!(p.node_normal, "AF is always node normal");
        assert_eq!(
            p.association_recoverable, feasible,
            "AF achieves single-color AR exactly when Theorem 4.1 allows it"
        );
    });
}

/// MCMR keeps MC's color count and node normal form while only ever
/// improving direct recoverability.
#[test]
fn mcmr_dominates_mc() {
    for_random_diagrams(77, |g| {
        let en = design(g, Strategy::En).unwrap();
        let mcmr = design(g, Strategy::Mcmr).unwrap();
        assert_eq!(mcmr.color_count(), en.color_count());
        let elig = EligibleAssociations::enumerate(g, 8);
        let before = core::properties::uncovered_associations(&en, &elig).len();
        let after = core::properties::uncovered_associations(&mcmr, &elig).len();
        assert!(after <= before);
        assert!(core::check(&mcmr, g, &elig).node_normal);
    });
}

/// Every strategy covers every node and edge (schema validation), and
/// single-color strategies stay single-color.
#[test]
fn strategies_always_design() {
    for_random_diagrams(99, |g| {
        for s in Strategy::ALL {
            let schema = design(g, s).unwrap();
            match s {
                Strategy::Deep | Strategy::Af | Strategy::Shallow => {
                    assert_eq!(schema.color_count(), 1, "{}", s)
                }
                _ => {}
            }
        }
    });
}

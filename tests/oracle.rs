//! Fixed-seed runs of the cross-strategy answer-equivalence oracle, pinned
//! as ordinary cargo tests so CI replays them forever. The sweep quantifies
//! over random diagrams, data, queries, and all seven schemas at once;
//! the named regressions below are seeds on which the oracle actually
//! caught bugs during development, kept at both the original and the
//! minimized scale. Build with `--features fuzz` to multiply the sweep.

use colorist::datagen::{generate, Rng, ScaleProfile};
use colorist::er::{Cardinality, ErGraph, Participation};
use colorist::workload::{run_seed, run_seeds, OracleConfig};

fn cases() -> u64 {
    if cfg!(feature = "fuzz") {
        192
    } else {
        32
    }
}

/// Every fixed seed must run divergence-free: all seven strategies return
/// the same logical answers on every generated query, and every runtime
/// metrics counter matches its plan's static count.
#[test]
fn fixed_seed_sweep_is_divergence_free() {
    let report = run_seeds(0, cases(), &OracleConfig::default(), 4);
    let divs = report.divergences();
    assert!(divs.is_empty(), "oracle divergences:\n{report}");
    // the sweep must be exercising real work, not vacuously passing
    assert!(report.feasible_seeds() > 0, "no feasible diagram in the sweep");
    assert!(report.feasible_seeds() < report.reports.len(), "no infeasible diagram in the sweep");
    assert!(report.queries_run() > 0, "no query executed in the sweep");
}

/// Regression: seeds 19, 39, and 43 diverged because the canonical-instance
/// generator ignored [`Participation::Total`] on `Many`-cardinality
/// endpoints, so participants that the completeness analysis assumed were
/// covered had no relationship instance at all. DEEP's descent plans then
/// under-returned on bare chain queries relative to the value-join schemas.
/// Fixed in `datagen::canonical` (coverage overwrite) and
/// `datagen::profile` (relationship-count floor).
#[test]
fn datagen_totality_regression_seeds_agree() {
    for seed in [19, 39, 43] {
        let full = run_seed(seed, &OracleConfig::default());
        assert!(full.divergences.is_empty(), "seed {seed}:\n{:#?}", full.divergences);
        // the minimized scale at which the divergence was actually debugged
        let small = run_seed(seed, &OracleConfig { scale: 3, ..OracleConfig::default() });
        assert!(small.divergences.is_empty(), "seed {seed} @ scale 3:\n{:#?}", small.divergences);
    }
}

/// Regression: seed 231 diverged because the plan compiler charged Up-run
/// incompleteness at the run's *bottom* placement. Orphan instances are
/// promoted to tree roots without ancestors (the §4.2 top-up rule), so an
/// ascent is complete only if its *terminating* placement is full — every
/// realized pair hangs below an occurrence of the top placement. UNDR's
/// BLUE tree picked a broken ascent (0 rows) where every other strategy
/// found the match; the compiler now defers the completeness charge to the
/// transition that leaves Up mode.
#[test]
fn up_run_completeness_regression_seed_agrees() {
    let full = run_seed(231, &OracleConfig::default());
    assert!(full.divergences.is_empty(), "seed 231:\n{:#?}", full.divergences);
    let small = run_seed(231, &OracleConfig { scale: 2, ..OracleConfig::default() });
    assert!(small.divergences.is_empty(), "seed 231 @ scale 2:\n{:#?}", small.divergences);
}

/// The minimized property behind the seed-19/39/43 regressions, asserted
/// directly on the datagen layer: whenever the profile affords at least as
/// many relationship instances as participants, a total `Many` endpoint
/// covers every participant instance.
#[test]
fn many_total_endpoints_cover_every_participant() {
    for case in 0..cases() {
        let mut rng = Rng::new(0xC0FE_u64.wrapping_add(case));
        let d = colorist::workload::oracle::arb_diagram(&mut rng, &OracleConfig::default());
        let g = ErGraph::from_diagram(&d).unwrap();
        let inst = generate(&g, &ScaleProfile::uniform(&g, 11), case);
        for e in g.edge_ids() {
            let edge = g.edge(e);
            if edge.cardinality != Cardinality::Many
                || edge.participation != Participation::Total
                || inst.count(edge.rel) < inst.count(edge.participant)
            {
                continue;
            }
            for po in 0..inst.count(edge.participant) {
                assert!(
                    !inst.linked_rels(e, po).is_empty(),
                    "case {case}: total Many edge {e} leaves participant {po} uncovered"
                );
            }
        }
    }
}

//! Cross-crate integration tests for the PR-8 static batch effect
//! analysis: B003 commutativity certificates must predict dynamic
//! commutation on real tpcw materializations under every strategy, B004
//! read-footprint disjointness must predict answer stability of compiled
//! plans across commits, and the independence-scheduled
//! [`CommitScheduler`](colorist::store::CommitScheduler) must partition
//! staged batches into classes that land on the serially-committed state
//! with one epoch bump per class.

use colorist::core::{design, Strategy};
use colorist::datagen::{generate, materialize, ScaleProfile};
use colorist::er::{catalog, ErGraph, NodeId};
use colorist::query::{compile, execute, plan_read_footprint, PatternBuilder};
use colorist::store::{
    analyze_batch, certify, CommitScheduler, Database, ElementId, UpdateBatch, Value,
};

fn build(strategy: Strategy) -> (ErGraph, Database) {
    let g = ErGraph::from_diagram(&catalog::tpcw()).expect("tpcw builds");
    let schema = design(&g, strategy).expect("tpcw designs");
    let db = materialize(&g, &schema, &generate(&g, &ScaleProfile::uniform(&g, 8), 11));
    (g, db)
}

fn by_name(g: &ErGraph, name: &str) -> NodeId {
    g.node_ids().find(|&n| g.node(n).name == name).expect("node exists")
}

fn instance(db: &Database, node: NodeId, ordinal: u32) -> ElementId {
    db.canonical_by_ordinal(node, ordinal).expect("instance exists")
}

/// Write-only batches on disjoint entities certify independent on every
/// strategy, and actually commute: both commit orders produce
/// byte-identical databases — extents, trees, indexes, statistics, and
/// epoch.
#[test]
fn disjoint_writes_certify_and_commute_on_every_strategy() {
    for s in Strategy::ALL {
        let (g, db) = build(s);
        let customer = instance(&db, by_name(&g, "customer"), 0);
        let item = instance(&db, by_name(&g, "item"), 0);
        let mut a = UpdateBatch::new();
        a.write_attr(customer, 1, Value::Int(41));
        let mut b = UpdateBatch::new();
        b.write_attr(item, 2, Value::Int(42));
        let fa = analyze_batch(&a, &db, &g).footprint;
        let fb = analyze_batch(&b, &db, &g).footprint;
        let cert = certify(&fa, &fb);
        assert!(cert.is_independent(), "{s}: {cert}");
        let mut ab = db.clone();
        a.apply(&mut ab, &g).expect("A then B applies");
        b.apply(&mut ab, &g).expect("A then B applies");
        let mut ba = db.clone();
        b.apply(&mut ba, &g).expect("B then A applies");
        a.apply(&mut ba, &g).expect("B then A applies");
        ab.same_state(&ba, true).unwrap_or_else(|m| panic!("{s}: {m}"));
    }
}

/// Two writes to the same attribute cell certify conflicting with the
/// written cell as witness, on every strategy.
#[test]
fn same_cell_writes_certify_conflicting() {
    for s in Strategy::ALL {
        let (g, db) = build(s);
        let customer = instance(&db, by_name(&g, "customer"), 0);
        let mut a = UpdateBatch::new();
        a.write_attr(customer, 1, Value::Int(1));
        let mut b = UpdateBatch::new();
        b.write_attr(customer, 1, Value::Int(2));
        let fa = analyze_batch(&a, &db, &g).footprint;
        let fb = analyze_batch(&b, &db, &g).footprint;
        let cert = certify(&fa, &fb);
        assert!(!cert.is_independent(), "{s}: same-cell writes must conflict");
    }
}

/// B004 end to end: a compiled plan whose read footprint is disjoint
/// from a batch's write footprint answers identically before and after
/// the commit; a batch that deletes from the plan's scanned node is
/// flagged as invalidating.
#[test]
fn read_footprint_disjointness_predicts_answer_stability() {
    for s in Strategy::ALL {
        let (g, db) = build(s);
        let q = PatternBuilder::new(&g, "items")
            .node("item")
            .pred_eq("id", Value::Int(3))
            .output(0)
            .build()
            .expect("item selection builds");
        let plan = compile(&g, &db.schema, &q).expect("item selection compiles");
        let reads = plan_read_footprint(&g, &db.schema, &plan);

        // a write to an item attribute the plan never reads is invisible
        let mut write = UpdateBatch::new();
        write.write_attr(instance(&db, by_name(&g, "item"), 1), 2, Value::Int(9));
        let fw = analyze_batch(&write, &db, &g).footprint;
        assert_eq!(fw.invalidates(&reads), None, "{s}");
        let pre = execute(&db, &g, &plan).expect("pre-commit run");
        let mut committed = db.clone();
        write.apply(&mut committed, &g).expect("write batch applies");
        let post = execute(&committed, &g, &plan).expect("post-commit run");
        assert_eq!(pre.elements, post.elements, "{s}");
        assert_eq!((pre.results, pre.distinct), (post.results, post.distinct), "{s}");

        // deleting an item retracts from the scanned extent: flagged
        let mut del = UpdateBatch::new();
        del.delete(instance(&db, by_name(&g, "item"), 1));
        // close over the relationship instances whose links die with it
        for e in g.edge_ids() {
            if g.edge(e).participant == by_name(&g, "item") {
                for ro in db.linked_rels(e, 1) {
                    del.delete(instance(&db, g.edge(e).rel, ro));
                }
            }
        }
        let fd = analyze_batch(&del, &db, &g).footprint;
        assert!(fd.invalidates(&reads).is_some(), "{s}: a delete from the scanned node");
    }
}

/// The scheduler partitions three staged batches — two contending for
/// one cell, one disjoint — into two classes, commits each class under
/// a single epoch bump, and lands on the same state as committing the
/// batches serially in stage order.
#[test]
fn scheduler_classes_match_serial_state_with_one_bump_per_class() {
    for s in Strategy::ALL {
        let (g, db) = build(s);
        let customer = instance(&db, by_name(&g, "customer"), 0);
        let item = instance(&db, by_name(&g, "item"), 0);
        let mut a = UpdateBatch::new();
        a.write_attr(customer, 1, Value::Int(1));
        let mut b = UpdateBatch::new();
        b.write_attr(customer, 1, Value::Int(2));
        let mut c = UpdateBatch::new();
        c.write_attr(item, 2, Value::Int(3));
        let mut sched = CommitScheduler::new();
        sched.stage(a.clone());
        sched.stage(b.clone());
        sched.stage(c.clone());
        let plan = sched.plan(&db, &g);
        assert_eq!(plan.classes, vec![vec![0, 1], vec![2]], "{s}");

        let pre_epoch = db.epoch();
        let mut grouped = db.clone();
        let receipts = sched.commit(&mut grouped, &g).expect("group commit succeeds");
        assert_eq!(receipts.len(), 2, "{s}");
        for (i, r) in receipts.iter().enumerate() {
            assert_eq!(r.epoch, pre_epoch + 1 + i as u64, "{s}: one bump per class");
            assert!(r.receipts.iter().all(|br| br.epoch == r.epoch), "{s}");
        }
        assert_eq!(grouped.epoch(), pre_epoch + 2, "{s}");

        let mut serial = db.clone();
        for batch in [&a, &b, &c] {
            batch.apply(&mut serial, &g).expect("serial applies");
        }
        grouped.same_state(&serial, false).unwrap_or_else(|m| panic!("{s}: {m}"));
    }
}

//! Observability-layer integration tests (DESIGN.md §9): span nesting
//! well-formedness over a traced suite run, chrome-trace round-tripping
//! through the in-tree JSON parser, counter determinism across worker
//! counts, and the per-op/total reconciliation contract of
//! `execute_profiled` + `explain_analyze`.

use colorist::core::{design, Strategy};
use colorist::datagen::{generate, materialize, ScaleProfile};
use colorist::er::{catalog, ErGraph};
use colorist::query::{compile, execute, execute_profiled, explain_analyze, Metrics};
use colorist::trace::{self, Json, Trace};
use colorist::workload::{suite::run_suite_on_threads, tpcw};
use std::sync::{Mutex, MutexGuard};

/// The trace collector is process-global; tests that collect must not
/// overlap.
fn collector_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn traced_suite(threads: usize) -> Trace {
    let _guard = collector_lock();
    let g = ErGraph::from_diagram(&catalog::tpcw()).expect("tpcw builds");
    let w = tpcw::workload(&g);
    let instance = generate(&g, &ScaleProfile::tpcw(&g, 20), 7);
    trace::collect_start();
    run_suite_on_threads(&g, &Strategy::ALL, &w, &instance, threads).expect("suite runs");
    trace::collect_stop()
}

#[test]
fn traced_suite_is_well_formed() {
    let t = traced_suite(4);
    t.check_well_formed().expect("hierarchy holds");
    // every pipeline stage shows up as its own span category
    for cat in ["suite", "design", "materialize", "compile", "query", "op", "update"] {
        assert!(!t.of_cat(cat).is_empty(), "no `{cat}` spans in {} total", t.spans.len());
    }
    // one suite span per (strategy, query) task, all nested under setup or
    // the top-level suite span's thread family
    let per_query = t.of_cat("suite").iter().filter(|s| s.name.contains(':')).count();
    assert!(per_query >= 7 * 16, "{per_query} task spans");
}

#[test]
fn chrome_trace_round_trips_through_the_json_parser() {
    let t = traced_suite(2);
    let json = trace::chrome_trace_json(&t);
    let doc = Json::parse(&json).expect("chrome export parses");
    assert_eq!(doc.get("displayTimeUnit").and_then(Json::as_str), Some("ms"));
    let events = doc.get("traceEvents").and_then(Json::as_arr).expect("traceEvents");
    let xs: Vec<_> =
        events.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some("X")).collect();
    assert_eq!(xs.len(), t.spans.len(), "one X event per span");
    // spot-check: ids survive, counters are attached as args (the export
    // reorders events by thread and start time, so match spans by id)
    let by_id: std::collections::BTreeMap<u64, _> = t.spans.iter().map(|s| (s.id, s)).collect();
    for e in &xs {
        let id = e.get("args").and_then(|a| a.get("id")).and_then(Json::as_u64).expect("id");
        let s = by_id.get(&id).expect("event id maps to a span");
        assert_eq!(e.get("name").and_then(Json::as_str), Some(s.name.as_str()));
        for &(k, v) in &s.counters {
            assert_eq!(
                e.get("args").and_then(|a| a.get(k)).and_then(Json::as_u64),
                Some(v),
                "counter {k} of span {}",
                s.name
            );
        }
    }
    // metadata names every thread
    let tids: std::collections::BTreeSet<u32> = t.spans.iter().map(|s| s.tid).collect();
    let meta = events.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some("M")).count();
    assert_eq!(meta, tids.len(), "one thread_name record per tid");
}

#[test]
fn span_counters_are_deterministic_across_worker_counts() {
    let serial = traced_suite(1);
    let parallel = traced_suite(4);
    // wall-clock, ids and thread assignment legitimately differ; the
    // multiset of (cat, name, counters) must not
    type SpanKey = (String, String, Vec<(&'static str, u64)>);
    let key = |t: &Trace| {
        let mut v: Vec<SpanKey> = t
            .spans
            .iter()
            .map(|s| {
                let mut c = s.counters.clone();
                c.sort_unstable();
                (s.cat.to_string(), s.name.clone(), c)
            })
            .collect();
        v.sort();
        v
    };
    assert_eq!(key(&serial), key(&parallel));
}

/// The PR-5 index/gallop counters flow through the span layer like the
/// PR-4 volume counters: present on `query` (and `op`) spans wherever the
/// kernels engaged, and — being deterministic functions of (scale, seed) —
/// identical between a serial and a 4-worker run.
#[test]
fn index_and_skip_counters_are_present_and_deterministic() {
    let serial = traced_suite(1);
    let parallel = traced_suite(4);
    for key in ["index_lookups", "elements_skipped"] {
        let query_total =
            |t: &Trace| -> u64 { t.of_cat("query").iter().filter_map(|s| s.counter(key)).sum() };
        let op_total =
            |t: &Trace| -> u64 { t.of_cat("op").iter().filter_map(|s| s.counter(key)).sum() };
        assert!(query_total(&serial) > 0, "no query span carries `{key}`");
        assert!(op_total(&serial) > 0, "no op span carries `{key}`");
        assert_eq!(query_total(&serial), query_total(&parallel), "`{key}` differs across workers");
        assert_eq!(op_total(&serial), op_total(&parallel), "`{key}` differs across workers");
    }
    // and per-query spans (not just totals) agree counter-for-counter
    let per_query = |t: &Trace| {
        let mut v: Vec<(String, u64, u64)> = t
            .of_cat("query")
            .iter()
            .map(|s| {
                (
                    s.name.clone(),
                    s.counter("index_lookups").unwrap_or(0),
                    s.counter("elements_skipped").unwrap_or(0),
                )
            })
            .collect();
        v.sort();
        v
    };
    assert_eq!(per_query(&serial), per_query(&parallel));
}

#[test]
fn per_op_deltas_sum_exactly_on_every_query_and_strategy() {
    let g = ErGraph::from_diagram(&catalog::tpcw()).expect("tpcw builds");
    let w = tpcw::workload(&g);
    let instance = generate(&g, &ScaleProfile::tpcw(&g, 20), 7);
    for strategy in Strategy::ALL {
        let schema = design(&g, strategy).expect("designs");
        let db = materialize(&g, &schema, &instance);
        for q in &w.reads {
            let plan = compile(&g, &schema, q).expect("compiles");
            let (result, profile) = execute_profiled(&db, &g, &plan).expect("runs");
            assert_eq!(profile.len(), plan.ops.len(), "{}/{strategy}", q.name);

            // profiled execution returns the same answer as plain execution
            let plain = execute(&db, &g, &plan).expect("runs");
            assert_eq!((plain.results, plain.distinct), (result.results, result.distinct));

            // the per-op metric deltas partition the query totals exactly;
            // results/distinct_results and elapsed are query-level (stamped
            // once at the end, attributed to no single operator)
            let mut sum = Metrics::default();
            for p in &profile {
                sum += p.metrics;
            }
            sum.results = result.metrics.results;
            sum.distinct_results = result.metrics.distinct_results;
            let norm = |m: &Metrics| Metrics { elapsed: Default::default(), ..*m };
            assert_eq!(norm(&sum), norm(&result.metrics), "{}/{strategy}", q.name);

            let text = explain_analyze(&g, &plan, &result, &profile);
            assert!(text.contains("per-op deltas sum exactly"), "{text}");
            assert!(!text.contains("DRIFT"), "{}/{strategy}:\n{text}", q.name);
        }
    }
}

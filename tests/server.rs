//! Cross-crate torture tests for the multi-client query service
//! (DESIGN.md §15): N-client mixed read/write schedules replayed
//! serially as the oracle reference. Per-read answers, the final
//! database state (`same_state`), and every deterministic counter must
//! be identical across 1/2/8 workers, both kernel families, and both
//! storage backends — and the prepared-plan cache must reach
//! steady-state hit rate ≥ 0.99 with zero stale serves after a
//! statistics-epoch bump.

use colorist::core::{design, Strategy};
use colorist::datagen::{generate, materialize, ScaleProfile};
use colorist::er::{catalog, ErGraph, NodeId};
use colorist::query::{execute, optimize, Pattern};
use colorist::server::{Server, ServerConfig};
use colorist::store::{
    Database, ElementId, KernelDispatch, MemPages, Metrics, PoolConfig, UpdateBatch, Value,
};
use colorist::workload::tpcw;
use std::sync::Arc;
use std::time::Duration;

fn by_name(g: &ErGraph, name: &str) -> NodeId {
    g.node_ids().find(|&n| g.node(n).name == name).expect("node exists")
}

fn instance(db: &Database, node: NodeId, ordinal: u32) -> ElementId {
    db.canonical_by_ordinal(node, ordinal).expect("instance exists")
}

/// A read's answer shape: (physical results, distinct results, elements).
type Answer = (u64, u64, Vec<ElementId>);

/// Tiny deterministic LCG so schedules are reproducible without any
/// external randomness source.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// One sync round of a client schedule: the writes are admitted and
/// flushed (one commit frontier), then the reads run against the
/// published epoch. The flush barrier is what makes the schedule
/// deterministic under any worker count — between rounds there is
/// exactly one database state a read can observe.
struct Round {
    writes: Vec<UpdateBatch>,
    reads: Vec<usize>,
}

/// Build a mixed schedule against `db`: attribute writes on low-ordinal
/// customers/items, one mid-schedule instance delete on an item nobody
/// else touches, and reads cycling the TPC-W patterns.
fn schedule(g: &ErGraph, db: &Database, seed: u64) -> Vec<Round> {
    let customer = by_name(g, "customer");
    let item = by_name(g, "item");
    let mut rng = Lcg(seed);
    (0..3)
        .map(|round| {
            let mut writes = Vec::new();
            for _ in 0..3 {
                let mut b = UpdateBatch::new();
                if rng.next().is_multiple_of(2) {
                    let e = instance(db, customer, (rng.next() % 5) as u32);
                    b.write_attr(e, 1, Value::Int(rng.next() as i64 & 0xffff));
                } else {
                    let e = instance(db, item, (rng.next() % 4) as u32);
                    b.write_attr(e, 2, Value::Int(rng.next() as i64 & 0xffff));
                }
                writes.push(b);
            }
            if round == 1 {
                let mut b = UpdateBatch::new();
                b.delete(instance(db, item, 5));
                writes.push(b);
            }
            let reads = (0..6).map(|_| (rng.next() % 5) as usize).collect();
            Round { writes, reads }
        })
        .collect()
}

/// Replay the schedule serially — direct `apply` + direct `execute` on
/// the evolving database. Returns the per-read answers (in global
/// submission order) and the final database.
fn serial_replay(
    g: &ErGraph,
    mut db: Database,
    patterns: &[Pattern],
    plan: &[Round],
) -> (Vec<Answer>, Database) {
    let mut answers = Vec::new();
    for round in plan {
        for w in &round.writes {
            w.apply(&mut db, g).expect("serial write applies");
        }
        for &qi in &round.reads {
            let p = optimize(&db, g, &patterns[qi]).expect("plan");
            let r = execute(&db, g, &p).expect("serial read runs");
            answers.push((r.results, r.distinct, r.elements));
        }
    }
    (answers, db)
}

/// Run the schedule through a server: writes admitted from the main
/// thread (admission order = schedule order), a flush barrier per round,
/// then the round's reads fired from two concurrent client threads and
/// folded back in submission order.
fn server_replay(
    g: &ErGraph,
    db: Database,
    patterns: &[Pattern],
    plan: &[Round],
    workers: usize,
) -> (Vec<Answer>, Database, Metrics) {
    let server = Server::start(db, g, &ServerConfig::default().with_workers(workers));
    let main = server.client();
    let mut answers = Vec::new();
    for round in plan {
        let pending: Vec<_> = round.writes.iter().map(|w| main.write(w.clone())).collect();
        main.flush().wait().expect("flush commits");
        for p in pending {
            p.wait().expect("write commits");
        }
        let mut shards: Vec<Vec<(usize, Answer)>> = std::thread::scope(|scope| {
            (0..2)
                .map(|t| {
                    let c = server.client();
                    let reads = &round.reads;
                    scope.spawn(move || {
                        reads
                            .iter()
                            .enumerate()
                            .filter(|(i, _)| i % 2 == t)
                            .map(|(i, &qi)| {
                                let r = c.read(&patterns[qi]).wait().expect("read serves");
                                (i, (r.results, r.distinct, r.elements))
                            })
                            .collect()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .collect()
        });
        let mut flat: Vec<_> = shards.drain(..).flatten().collect();
        flat.sort_unstable_by_key(|&(i, _)| i);
        answers.extend(flat.into_iter().map(|(_, a)| a));
    }
    let metrics = server.metrics();
    let final_db = server.shutdown();
    (answers, final_db, metrics)
}

/// Zero the wall-clock-derived fields so the rest of the counter set can
/// be compared exactly across worker counts.
fn deterministic(m: Metrics) -> Metrics {
    Metrics { elapsed: Duration::ZERO, queue_wait_ns: 0, ..m }
}

/// The tentpole invariant: for every strategy, kernel family, and
/// storage backend, the concurrent schedule lands on the serial oracle's
/// answers and final state for 1, 2, and 8 workers — and every
/// deterministic counter (plan-cache families included) is identical
/// across the worker counts.
#[test]
fn torture_matches_serial_oracle_for_any_worker_count() {
    let g = ErGraph::from_diagram(&catalog::tpcw()).expect("tpcw builds");
    let patterns: Vec<Pattern> = tpcw::workload(&g).reads.into_iter().take(5).collect();
    let instance_data = generate(&g, &ScaleProfile::uniform(&g, 6), 11);
    for s in Strategy::ALL {
        let schema = design(&g, s).expect("tpcw designs");
        for dispatch in [KernelDispatch::Reference, KernelDispatch::CostModel] {
            for paged in [false, true] {
                let mut base = materialize(&g, &schema, &instance_data);
                base.set_kernel_dispatch(dispatch);
                if paged {
                    base.attach_paged(Arc::new(MemPages::new()), PoolConfig::default())
                        .expect("paged backend attaches");
                }
                let plan = schedule(&g, &base, 0xC0FFEE ^ s as u64);
                let (oracle_answers, oracle_db) = serial_replay(&g, base.clone(), &patterns, &plan);
                let mut counter_sets = Vec::new();
                for workers in [1, 2, 8] {
                    let ctx = format!("{s}/{dispatch:?}/paged={paged}/workers={workers}");
                    let (answers, final_db, metrics) =
                        server_replay(&g, base.clone(), &patterns, &plan, workers);
                    assert_eq!(answers, oracle_answers, "{ctx}: answers diverge from serial");
                    final_db
                        .same_state(&oracle_db, false)
                        .unwrap_or_else(|m| panic!("{ctx}: state diverges from serial: {m}"));
                    counter_sets.push((ctx, deterministic(metrics)));
                }
                let (ref_ctx, reference) = &counter_sets[0];
                for (ctx, m) in &counter_sets[1..] {
                    assert_eq!(
                        m, reference,
                        "{ctx}: deterministic counters diverge from {ref_ctx}"
                    );
                }
            }
        }
    }
}

/// Acceptance criterion: steady-state plan-cache hit rate ≥ 0.99 on a
/// repeated workload, and a statistics-epoch bump causes exactly one
/// re-optimization per pattern — never a stale serve.
#[test]
fn plan_cache_steady_state_hit_rate_with_zero_stale_serves() {
    let g = ErGraph::from_diagram(&catalog::tpcw()).expect("tpcw builds");
    let schema = design(&g, Strategy::Dr).expect("tpcw designs");
    let db = materialize(&g, &schema, &generate(&g, &ScaleProfile::uniform(&g, 6), 11));
    let customer = by_name(&g, "customer");
    let target = instance(&db, customer, 0);
    let patterns: Vec<Pattern> = tpcw::workload(&g).reads.into_iter().take(2).collect();
    let server = Server::start(db, &g, &ServerConfig::default().with_workers(4));
    let c = server.client();
    // repeated workload: 2 compile misses, then hits forever
    for i in 0..300 {
        let r = c.read(&patterns[i % 2]).wait().expect("read serves");
        assert_eq!(r.cache_hit, i >= 2, "request {i}");
    }
    let stats = server.cache_stats();
    assert!(stats.hit_rate() >= 0.99, "steady-state hit rate {}", stats.hit_rate());
    assert_eq!((stats.hits, stats.misses), (298, 2));

    // a committed write bumps the statistics epoch: the next serve of
    // each pattern must re-optimize (miss), all later serves hit again
    let mut b = UpdateBatch::new();
    b.write_attr(target, 1, Value::Int(4242));
    c.write(b);
    c.flush().wait().expect("flush commits");
    for (i, q) in patterns.iter().enumerate() {
        assert!(!c.read(q).wait().expect("read serves").cache_hit, "pattern {i} must re-optimize");
        assert!(c.read(q).wait().expect("read serves").cache_hit, "pattern {i} re-cached");
    }
    let m = server.metrics();
    assert_eq!((m.plan_cache_misses, m.plan_cache_hits), (4, 300), "zero stale serves");
    server.shutdown();
}

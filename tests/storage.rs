//! Storage-backend differential tests (DESIGN.md §14): the paged backend
//! is a durability + page-accounting layer under the same in-memory
//! working representation, so attaching it must change **nothing** about
//! query answers or the pre-existing deterministic counters — it may only
//! *add* page traffic in the four storage counters
//! (`page_reads`/`page_writes`/`pool_hits`/`pool_evictions`).

use std::sync::Arc;

use colorist::core::{design, Strategy};
use colorist::datagen::{generate, materialize, ScaleProfile};
use colorist::er::{catalog, ErGraph};
use colorist::query::{execute, optimize};
use colorist::store::{Database, MemPages, Metrics, PoolConfig, DEFAULT_POOL_BYTES};
use colorist::workload::tpcw;

fn tpcw_db(strategy: Strategy, scale: u32) -> (ErGraph, Database) {
    let g = ErGraph::from_diagram(&catalog::tpcw()).expect("tpcw builds");
    let profile = ScaleProfile::tpcw(&g, scale);
    let inst = generate(&g, &profile, 42);
    let schema = design(&g, strategy).expect("strategy designs tpcw");
    let db = materialize(&g, &schema, &inst);
    (g, db)
}

/// Everything in a [`Metrics`] except the four storage counters and the
/// wall clock — the slice of the counter vocabulary that existed before
/// the paged backend and must stay byte-identical under it.
fn non_storage(m: &Metrics) -> Metrics {
    Metrics {
        page_reads: 0,
        page_writes: 0,
        pool_hits: 0,
        pool_evictions: 0,
        elapsed: Default::default(),
        ..*m
    }
}

/// Attach an in-memory paged backend with the given pool budget.
fn attach(db: &mut Database, pool_bytes: u64) {
    db.attach_paged(Arc::new(MemPages::new()), PoolConfig { pool_bytes })
        .expect("attach flushes to MemPages");
}

/// The heart of the acceptance criteria: on every TPC-W strategy, every
/// workload read query returns byte-identical answers on the heap and the
/// paged backend, and every pre-existing deterministic counter matches
/// exactly. The paged run is additionally required to actually read pages
/// somewhere in the workload (the accounting isn't vacuous).
#[test]
fn mem_vs_paged_differential_across_all_seven_strategies() {
    for s in Strategy::ALL {
        let (g, mem_db) = tpcw_db(s, 40);
        let mut paged_db = mem_db.clone();
        attach(&mut paged_db, DEFAULT_POOL_BYTES);
        assert!(paged_db.is_paged() && !mem_db.is_paged());

        let w = tpcw::workload(&g);
        let mut paged_page_traffic = 0u64;
        for q in &w.reads {
            let plan_m = optimize(&mem_db, &g, q).expect("plans on mem");
            let plan_p = optimize(&paged_db, &g, q).expect("plans on paged");
            assert_eq!(format!("{plan_m}"), format!("{plan_p}"), "{s}/{}: plan drift", q.name);

            let rm = execute(&mem_db, &g, &plan_m).expect("runs on mem");
            let rp = execute(&paged_db, &g, &plan_p).expect("runs on paged");
            assert_eq!(rm.elements, rp.elements, "{s}/{}: answers differ", q.name);
            assert_eq!(
                (rm.results, rm.distinct),
                (rp.results, rp.distinct),
                "{s}/{}: cardinalities differ",
                q.name
            );
            assert_eq!(
                non_storage(&rm.metrics),
                non_storage(&rp.metrics),
                "{s}/{}: non-storage counters differ",
                q.name
            );
            assert_eq!(
                (rm.metrics.page_reads, rm.metrics.pool_hits, rm.metrics.pool_evictions),
                (0, 0, 0),
                "{s}/{}: heap run charged page counters",
                q.name
            );
            paged_page_traffic += rp.metrics.page_reads + rp.metrics.pool_hits;
        }
        assert!(paged_page_traffic > 0, "{s}: paged workload never touched a page");
    }
}

/// Pool-pressure torture: a one-frame pool (8 KiB budget) forces an
/// eviction on nearly every page transition. Answers must not change, and
/// the clock policy must actually evict.
#[test]
fn tiny_pool_torture_preserves_answers_and_evicts() {
    let (g, mem_db) = tpcw_db(Strategy::Dr, 40);
    let mut paged_db = mem_db.clone();
    attach(&mut paged_db, 8192);

    let w = tpcw::workload(&g);
    let mut evictions = 0u64;
    for q in &w.reads {
        let plan = optimize(&mem_db, &g, q).expect("plans");
        let rm = execute(&mem_db, &g, &plan).expect("mem");
        let rp = execute(&paged_db, &g, &plan).expect("paged under pressure");
        assert_eq!(rm.elements, rp.elements, "{}: answers differ under pool pressure", q.name);
        assert_eq!(
            non_storage(&rm.metrics),
            non_storage(&rp.metrics),
            "{}: counters differ under pool pressure",
            q.name
        );
        evictions += rp.metrics.pool_evictions;
    }
    assert!(evictions > 0, "a one-frame pool must evict somewhere in the workload");
}

/// Eviction-then-reread correctness probe: running the same query twice on
/// a starved pool (each run gets a cold per-query pool, so the second run
/// rereads every evicted page) must be deterministic — identical answers
/// *and* identical page counters.
#[test]
fn eviction_then_reread_is_deterministic() {
    let (g, db0) = tpcw_db(Strategy::Deep, 40);
    let mut db = db0;
    attach(&mut db, 8192);

    let w = tpcw::workload(&g);
    let q = &w.reads[0];
    let plan = optimize(&db, &g, q).expect("plans");
    let first = execute(&db, &g, &plan).expect("first run");
    let second = execute(&db, &g, &plan).expect("second run");
    assert_eq!(first.elements, second.elements);
    assert_eq!(
        Metrics { elapsed: Default::default(), ..first.metrics },
        Metrics { elapsed: Default::default(), ..second.metrics },
        "page accounting must be deterministic across reruns"
    );
    assert!(first.metrics.pool_evictions > 0, "the probe needs a starved pool to mean anything");
}

/// Snapshot isolation survives the backend: clones taken before more
/// writes keep answering from their own directory.
#[test]
fn clone_of_paged_database_stays_queryable() {
    let (g, db0) = tpcw_db(Strategy::En, 30);
    let mut db = db0;
    attach(&mut db, DEFAULT_POOL_BYTES);
    let frozen = db.clone();

    let w = tpcw::workload(&g);
    let q = &w.reads[0];
    let plan = optimize(&frozen, &g, q).expect("plans");
    let before = execute(&frozen, &g, &plan).expect("clone runs");
    // mutate + reflush the original through the shared backend
    let item = g.node_by_name("item").expect("tpcw has items");
    let victim = db.extent(item)[0];
    db.kill_links_of(&g, victim);
    db.remove_element_occurrences(victim);
    db.flush_storage().expect("reflush after delete");
    // the pre-write clone still answers identically
    let after = execute(&frozen, &g, &plan).expect("clone still runs");
    assert_eq!(before.elements, after.elements);
    assert_eq!(
        Metrics { elapsed: Default::default(), ..before.metrics },
        Metrics { elapsed: Default::default(), ..after.metrics },
    );
}

/// Durability: save to a page file, load it back, and the loaded database
/// is state-identical and answers the whole read workload identically.
#[test]
fn save_then_load_answers_identically() {
    let (g, db0) = tpcw_db(Strategy::Mcmr, 30);
    let mut db = db0;
    let path = std::env::temp_dir().join(format!("colorist-it-{}.pages", std::process::id()));
    db.save_paged(&path, PoolConfig::default()).expect("saves");
    let loaded =
        Database::load_paged(&path, db.schema.clone(), PoolConfig::default()).expect("loads");
    loaded.same_state(&db, true).expect("loaded state matches");

    let w = tpcw::workload(&g);
    for q in &w.reads {
        let plan = optimize(&db, &g, q).expect("plans");
        let a = execute(&db, &g, &plan).expect("original");
        let b = execute(&loaded, &g, &plan).expect("loaded");
        assert_eq!(a.elements, b.elements, "{}", q.name);
    }
    drop(loaded);
    let _ = std::fs::remove_file(&path);
}

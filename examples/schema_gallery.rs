//! Render the colored-forest schemas of every catalog diagram — a gallery
//! of what the design algorithms produce across the evaluation collection.
//!
//! ```text
//! cargo run --example schema_gallery [diagram] [strategy]
//! cargo run --example schema_gallery er5 DR
//! ```

use colorist::core::{design, design_report, Strategy};
use colorist::er::{catalog, ErGraph};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [] => {
            // summary across the whole collection
            for name in catalog::COLLECTION {
                let diagram = catalog::by_name(name).expect("catalog diagram");
                let graph = ErGraph::from_diagram(&diagram)?;
                println!("=== {name} ===");
                println!("{}", design_report(&graph));
            }
            println!("(pass a diagram name and strategy to see the schema trees,");
            println!(" e.g. `cargo run --example schema_gallery tpcw DR`)");
        }
        [name] | [name, _] => {
            let diagram = catalog::by_name(name).ok_or_else(|| {
                format!("unknown diagram `{name}`; try: {:?}", catalog::COLLECTION)
            })?;
            let graph = ErGraph::from_diagram(&diagram)?;
            let strategy = match args.get(1) {
                Some(s) => Strategy::parse(s).ok_or_else(|| format!("unknown strategy `{s}`"))?,
                None => Strategy::Dr,
            };
            let schema = design(&graph, strategy)?;
            println!("{}", schema.render(&graph));
        }
        _ => eprintln!("usage: schema_gallery [diagram] [strategy]"),
    }
    Ok(())
}

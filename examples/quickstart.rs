//! Quickstart: from an ER design specification to a colored schema and a
//! running query, in ~60 lines.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use colorist::core::{design, design_report, Strategy};
use colorist::datagen::{generate, materialize, ScaleProfile};
use colorist::er::parse::parse_diagram;
use colorist::er::ErGraph;
use colorist::query::{compile, execute, explain, PatternBuilder};
use colorist::store::Value;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The design specification: an ER diagram in the text DSL.
    let diagram = parse_diagram(
        "diagram blog\n\
         entity user    { id* name email }\n\
         entity post    { id* title body published:date }\n\
         entity comment { id* text at:date }\n\
         entity tag     { id* label }\n\
         rel writes   1:m user -- post!\n\
         rel comments 1:m user -- comment!\n\
         rel on       1:m post -- comment!\n\
         rel tagged   m:n post -- tag\n",
    )?;
    let graph = ErGraph::from_diagram(&diagram)?;

    // 2. What does the design space look like? (Theorem 4.1 verdict plus
    //    the property matrix of every strategy.)
    println!("{}", design_report(&graph));

    // 3. Design the recommended schema (the paper suggests MCMR for most
    //    situations; DR when complete direct recoverability matters).
    let schema = design(&graph, Strategy::Mcmr)?;
    println!("{}", schema.render(&graph));

    // 4. Populate it: 200 users, constraint-respecting links, seeded.
    let profile = ScaleProfile::uniform(&graph, 200);
    let instance = generate(&graph, &profile, 7);
    let db = materialize(&graph, &schema, &instance);
    println!("database: {} elements over {} colors\n", db.element_count(), db.color_count());

    // 5. Ask a question that spans three associations: comments on posts
    //    written by one user (user 0 is prolific under this seed).
    let query = PatternBuilder::new(&graph, "comments-on-user-posts")
        .node("user")
        .pred_eq("id", Value::Int(0))
        .node("comment")
        .chain(0, 1, &["writes", "post", "on"])?
        .output(1)
        .build()?;
    let plan = compile(&graph, &db.schema, &query)?;
    println!("{}", explain(&graph, &plan));

    let result = execute(&db, &graph, &plan)?;
    println!(
        "{} comments found; {} structural joins, {} value joins, {} color crossings, {:?}",
        result.distinct,
        result.metrics.structural_joins,
        result.metrics.value_joins,
        result.metrics.color_crossings,
        result.metrics.elapsed,
    );
    Ok(())
}

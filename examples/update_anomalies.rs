//! Update anomalies made visible: the same single-element update (the
//! paper's U3) executed against a normalized MCT schema and against the
//! redundant DEEP/UNDR schemas.
//!
//! ```text
//! cargo run --release --example update_anomalies
//! ```

use colorist::core::{design, Strategy};
use colorist::datagen::{generate, materialize, ScaleProfile};
use colorist::er::{catalog, ErGraph};
use colorist::query::{execute_update, PatternBuilder, UpdateAction, UpdateSpec};
use colorist::store::Value;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = ErGraph::from_diagram(&catalog::tpcw())?;
    let profile = ScaleProfile::tpcw(&graph, 200);
    let instance = generate(&graph, &profile, 42);

    // U3: change one address's street. A single logical write.
    let u3 = UpdateSpec {
        name: "U3".into(),
        pattern: PatternBuilder::new(&graph, "U3loc")
            .node("address")
            .pred_eq("id", Value::Int(7))
            .output(0)
            .build()?,
        action: UpdateAction::Modify { attr: 1, value: Value::Text("1 New Street".into()) },
    };

    println!("U3: update one address element\n");
    println!(
        "{:<8} {:>8} {:>9} {:>11} {:>12}",
        "schema", "logical", "physical", "dup-writes", "time"
    );
    for s in Strategy::ALL {
        let schema = design(&graph, s)?;
        let mut db = materialize(&graph, &schema, &instance);
        let out = execute_update(&mut db, &graph, &u3)?;
        println!(
            "{:<8} {:>8} {:>9} {:>11} {:>12?}",
            s.label(),
            out.logical,
            out.physical,
            out.metrics.duplicate_updates,
            out.metrics.elapsed
        );
    }

    println!();
    println!("Node-normalized schemas (AF, SHALLOW, EN, MCMR, DR) write the element once.");
    println!("DEEP and UNDR must chase every physical copy — the anomaly the normal");
    println!("forms of §3.2 exist to prevent. The MCT schemas get the best of both:");
    println!("one write, yet Q1-style queries stay purely structural.");
    Ok(())
}

//! A guided tour of the paper's running example: the TPC-W benchmark
//! diagram of Figure 1 and the schemas of Figures 2–5.
//!
//! ```text
//! cargo run --release --example tpcw_walkthrough
//! ```

use colorist::core::{design, single_color_feasibility, Strategy};
use colorist::datagen::{generate, materialize, ScaleProfile};
use colorist::er::{catalog, EligibleAssociations, ErGraph};
use colorist::query::{compile, execute, explain};
use colorist::store::stats::stats;
use colorist::workload::tpcw;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let diagram = catalog::tpcw();
    let graph = ErGraph::from_diagram(&diagram)?;

    // §1: why a single tree can't do it (Theorem 4.1 on Figure 1)
    let feas = single_color_feasibility(&graph);
    println!("Can a single-color XML schema be both anomaly-free and");
    println!("association-recoverable for TPC-W?  {}", feas.feasible());
    println!("  because: {}\n", feas.explain());

    // §4–§5: the seven schemas
    for s in Strategy::ALL {
        let schema = design(&graph, s)?;
        println!(
            "{:<8} {} color(s), {:>3} placements, {:>2} idrefs, {:>2} ICICs",
            s.label(),
            schema.color_count(),
            schema.placements().len(),
            schema.idrefs().len(),
            schema.icics().len()
        );
    }
    println!();

    // Figure 5: the DR schema, rendered tree by tree
    let dr = design(&graph, Strategy::Dr)?;
    println!("{}", dr.render(&graph));

    // §6: load one instance into two schemas and watch Q1's plan change
    let profile = ScaleProfile::tpcw(&graph, 200);
    let instance = generate(&graph, &profile, 42);
    let w = tpcw::workload(&graph);
    let q1 = &w.reads[0];

    for s in [Strategy::Af, Strategy::Shallow, Strategy::En, Strategy::Dr] {
        let schema = design(&graph, s)?;
        let db = materialize(&graph, &schema, &instance);
        let st = stats(&db, &graph);
        let plan = compile(&graph, &db.schema, q1)?;
        let r = execute(&db, &graph, &plan)?;
        println!(
            "--- {} ({} elements, {:.2} MB) -> {} orders in {:?}",
            s.label(),
            st.elements,
            st.data_mbytes(),
            r.distinct,
            r.metrics.elapsed
        );
        println!("{}", explain(&graph, &plan));
    }

    // the paper's punchline, in one sentence
    let elig = EligibleAssociations::enumerate_default(&graph);
    println!(
        "TPC-W has {} eligible associations; the DR schema of Figure 5 makes every \
         one of them a single colored ancestor-descendant step.",
        elig.len()
    );
    Ok(())
}

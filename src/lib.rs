//! Umbrella crate re-exporting the whole `colorist` workspace.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use colorist_core as core;
pub use colorist_datagen as datagen;
pub use colorist_er as er;
pub use colorist_mct as mct;
pub use colorist_query as query;
pub use colorist_server as server;
pub use colorist_store as store;
pub use colorist_trace as trace;
pub use colorist_workload as workload;
